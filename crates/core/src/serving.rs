//! The serving substrate shared by SGDRC and every baseline policy.
//!
//! Mirrors the paper's online architecture (Fig. 6): LS requests arrive on
//! per-model queues (each LS model has several instances, §9.2), BE tasks
//! run closed-loop, and kernels from different tasks enter the LS / BE
//! kernel queues round-robin. At most one LS kernel and one BE kernel are
//! resident at any time (§4) — every evaluated system fits this structure;
//! only the *resource decisions* differ, which is what the [`Policy`]
//! trait captures.

use crate::profiler::ModelProfile;
use dnn::kernel::KernelDesc;
use dnn::zoo::Model;
use exec_sim::{
    ChannelSet, Engine, EngineEvent, LaunchConfig, LaunchId, PreparedKernel, RateMode, TpcMask,
};
use gpu_spec::GpuSpec;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

/// A deployed task: compiled model + offline profile.
#[derive(Debug, Clone)]
pub struct Task {
    pub model: Model,
    pub profile: ModelProfile,
    /// Launch-ready kernels (shared descriptor + precomputed performance
    /// invariants), parallel to `model.kernels`. Dispatching one costs an
    /// `Arc` bump — no descriptor copy, no invariant derivation.
    pub kernels: Vec<PreparedKernel>,
}

impl Task {
    pub fn new(model: Model, spec: &GpuSpec) -> Self {
        let profile = crate::profiler::profile_model(&model, spec);
        let kernels = model
            .kernels
            .iter()
            .map(|k| PreparedKernel::new(spec, k.clone()))
            .collect();
        Self {
            model,
            profile,
            kernels,
        }
    }
}

/// One LS request in the merged arrival stream: which task it belongs to
/// and when it arrives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    pub task: u32,
    pub at_us: f64,
}

/// Merges per-task sorted arrival lists into one stream ordered by
/// `(time, task index)` — exactly the sequence the seed per-cursor scan
/// consumed arrivals in (on a time tie the lowest task index wins, and
/// equal-time arrivals of one task keep their within-task order).
pub fn merge_arrivals(per_task: &[Vec<f64>]) -> Vec<Arrival> {
    let mut merged: Vec<Arrival> = Vec::with_capacity(per_task.iter().map(Vec::len).sum());
    for (task, list) in per_task.iter().enumerate() {
        merged.extend(list.iter().map(|&at_us| Arrival {
            task: task as u32,
            at_us,
        }));
    }
    // Stable sort so duplicate (time, task) entries keep their order.
    merged.sort_by(|a, b| a.at_us.total_cmp(&b.at_us).then(a.task.cmp(&b.task)));
    merged
}

/// An immutable request trace shared by every scenario built from it.
///
/// The per-task sorted arrival lists are the source of truth — metrics
/// and tests keep reading them. The merged single stream is derived
/// lazily, once per trace, and then shared by every scenario holding an
/// `Arc` to this trace; the seed-style scan path never pays for it.
#[derive(Debug, Default)]
pub struct ArrivalTrace {
    per_task: Vec<Vec<f64>>,
    merged: OnceLock<Vec<Arrival>>,
}

impl ArrivalTrace {
    /// Wraps per-task arrival lists; each must be sorted ascending (as
    /// `workload::trace::generate` produces them).
    pub fn new(per_task: Vec<Vec<f64>>) -> Self {
        debug_assert!(
            per_task.iter().all(|v| v.windows(2).all(|w| w[0] <= w[1])),
            "per-task arrival lists must be sorted"
        );
        Self {
            per_task,
            merged: OnceLock::new(),
        }
    }

    /// The per-task arrival lists (source of truth).
    pub fn per_task(&self) -> &[Vec<f64>] {
        &self.per_task
    }

    /// Number of LS tasks the trace covers.
    pub fn num_tasks(&self) -> usize {
        self.per_task.len()
    }

    /// Total number of requests across all tasks.
    pub fn len(&self) -> usize {
        self.per_task.iter().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.per_task.iter().all(Vec::is_empty)
    }

    /// The k-way-merged stream (see [`merge_arrivals`]), built on first
    /// use and cached for every subsequent scenario sharing this trace.
    pub fn merged(&self) -> &[Arrival] {
        self.merged.get_or_init(|| merge_arrivals(&self.per_task))
    }
}

impl From<Vec<Vec<f64>>> for ArrivalTrace {
    fn from(per_task: Vec<Vec<f64>>) -> Self {
        Self::new(per_task)
    }
}

/// One end-to-end serving scenario.
///
/// Task sets and the arrival trace sit behind `Arc`s: sweeps build one
/// scenario per (system × BE co-location) pair, and constructing or
/// cloning one costs pointer bumps — not deep copies of compiled models,
/// profiles and traces.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub spec: GpuSpec,
    pub ls: Arc<[Task]>,
    pub be: Arc<[Task]>,
    /// In-flight inference slots per LS model (§9.2: 4 instances).
    pub ls_instances: usize,
    /// Request arrivals: one sorted list per LS task plus the lazily
    /// merged stream the serving loop consumes.
    pub arrivals: Arc<ArrivalTrace>,
    /// Serving horizon (µs).
    pub horizon_us: f64,
}

impl Scenario {
    /// Builds a scenario that owns fresh copies of its inputs. Callers
    /// sharing task sets or traces across many scenarios construct the
    /// `Arc`ed fields directly instead.
    pub fn new(
        spec: GpuSpec,
        ls: Vec<Task>,
        be: Vec<Task>,
        ls_instances: usize,
        arrivals: Vec<Vec<f64>>,
        horizon_us: f64,
    ) -> Self {
        Self {
            spec,
            ls: ls.into(),
            be: be.into(),
            ls_instances,
            arrivals: Arc::new(ArrivalTrace::new(arrivals)),
            horizon_us,
        }
    }
}

/// A completed LS request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedRequest {
    pub arrival_us: f64,
    pub done_us: f64,
}

impl CompletedRequest {
    /// End-to-end latency including queueing delay (§9.2).
    pub fn latency_us(&self) -> f64 {
        self.done_us - self.arrival_us
    }
}

/// Result of one serving run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Completed requests per LS task.
    pub ls_completed: Vec<Vec<CompletedRequest>>,
    /// Whole inferences completed per BE task.
    pub be_completed: Vec<u64>,
    /// Time actually simulated (µs).
    pub horizon_us: f64,
    /// BE kernel preemptions observed.
    pub be_preemptions: u64,
    /// Engine events (kernel completions + preemptions) processed — the
    /// denominator for events/sec throughput measurements.
    pub engine_events: u64,
    /// LS requests ripped out of this replica by crash drains
    /// ([`ServingState::crash_drain`]) — each one goes back through the
    /// cluster router for re-dispatch. 0 outside fault-injection runs.
    pub ls_requeued: u64,
}

/// An in-flight inference.
#[derive(Debug, Clone, Copy)]
struct Inference {
    arrival_us: f64,
    cursor: usize,
}

/// A kernel currently on the GPU.
#[derive(Debug, Clone, Copy)]
pub struct ActiveLaunch {
    pub id: LaunchId,
    pub task: usize,
    pub kernel_idx: usize,
    pub mask: TpcMask,
    pub channels: ChannelSet,
}

/// Reusable simulation storage for repeated serving runs.
///
/// A sweep over thousands of short cells rebuilds the engine, the LS/BE
/// queues and the statistics vectors once per cell when it goes through
/// [`run`]; threading one `SimContext` through
/// [`run_configured_in`] instead makes every structure's allocation a
/// one-time cost — the engine is [`reset`](Engine::reset) in place, the
/// queues are cleared, and consumed [`RunStats`] hand their buffers back
/// via [`SimContext::recycle`]. Results are bit-identical to the
/// fresh-allocation path (enforced by `workload/tests/serving_equiv.rs`).
#[derive(Default)]
pub struct SimContext {
    engine: Option<Engine>,
    pending: Vec<VecDeque<f64>>,
    inflight: Vec<VecDeque<Inference>>,
    be_cursor: Vec<usize>,
    be_active: Vec<bool>,
    ls_completed: Vec<Vec<CompletedRequest>>,
    be_completed: Vec<u64>,
}

impl SimContext {
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a consumed run's statistics back so the next run through
    /// this context reuses the completion-list allocations instead of
    /// growing fresh ones.
    pub fn recycle(&mut self, mut stats: RunStats) {
        for v in &mut stats.ls_completed {
            v.clear();
        }
        self.ls_completed = stats.ls_completed;
        stats.be_completed.clear();
        self.be_completed = stats.be_completed;
    }
}

/// Serving state visible to policies.
pub struct ServingState<'s> {
    pub scenario: &'s Scenario,
    pub engine: Engine,
    /// Which serving-loop implementation drives this state (admission
    /// granularity differs; results do not).
    mode: ServingMode,
    /// Arrived but not yet admitted requests, per LS task.
    pending: Vec<VecDeque<f64>>,
    /// Admitted inferences, per LS task (front is oldest).
    inflight: Vec<VecDeque<Inference>>,
    /// Running count of pending + in-flight requests, maintained
    /// incrementally (+1 per arrival, −1 per completed inference) so
    /// [`ls_backlog`](Self::ls_backlog) is O(1) instead of re-summing
    /// every queue.
    backlog: usize,
    /// Running count of admitted (in-flight) inferences across all LS
    /// tasks, so [`ls_ready`](Self::ls_ready) — queried by policies on
    /// every dispatch — is O(1) instead of scanning every queue.
    inflight_total: usize,
    /// Monotone counter bumped whenever LS queue state (pending,
    /// inflight, cursors or the round-robin position) changes. Lets
    /// [`peek_ls`](Self::peek_ls) and policy-side window queries be
    /// memoized across the events that cannot change them (BE
    /// completions, preemptions, timers).
    ls_version: u64,
    /// Memoized `peek_ls` result, valid while `ls_version` is unchanged
    /// (consulted in fast mode only; the seed path always rescans).
    peek_ls_cache: Cell<(u64, Option<(usize, usize)>)>,
    ls_rr: usize,
    be_rr: usize,
    /// Closed-loop BE inference cursor per BE task.
    be_cursor: Vec<usize>,
    /// Which BE tasks are currently resident on this GPU. Every task
    /// starts active; a cluster's fleet controller parks/resumes BE work
    /// by toggling entries (see [`set_be_active`](Self::set_be_active)).
    /// [`peek_be`](Self::peek_be) skips inactive tasks, so with all tasks
    /// active the single-GPU behaviour is unchanged.
    be_active: Vec<bool>,
    pub ls_launch: Option<ActiveLaunch>,
    pub be_launch: Option<ActiveLaunch>,
    pub stats: RunStats,
}

impl<'s> ServingState<'s> {
    /// Builds the state from a [`SimContext`]'s recycled storage: the
    /// engine resets in place, queue vectors clear and re-size, and the
    /// statistics vectors come from the last recycled run. On an empty
    /// context this is exactly the fresh-allocation construction.
    fn new_in(scenario: &'s Scenario, mode: ServingMode, ctx: &mut SimContext) -> Self {
        let n_ls = scenario.ls.len();
        let n_be = scenario.be.len();
        let engine = match ctx.engine.take() {
            Some(mut e) => {
                e.reset(&scenario.spec);
                e
            }
            None => Engine::new(scenario.spec.clone()),
        };
        let mut pending = std::mem::take(&mut ctx.pending);
        for q in &mut pending {
            q.clear();
        }
        pending.resize_with(n_ls, VecDeque::new);
        let mut inflight = std::mem::take(&mut ctx.inflight);
        for q in &mut inflight {
            q.clear();
        }
        inflight.resize_with(n_ls, VecDeque::new);
        let mut be_cursor = std::mem::take(&mut ctx.be_cursor);
        be_cursor.clear();
        be_cursor.resize(n_be, 0);
        let mut be_active = std::mem::take(&mut ctx.be_active);
        be_active.clear();
        be_active.resize(n_be, true);
        let mut ls_completed = std::mem::take(&mut ctx.ls_completed);
        for v in &mut ls_completed {
            v.clear();
        }
        ls_completed.resize_with(n_ls, Vec::new);
        let mut be_completed = std::mem::take(&mut ctx.be_completed);
        be_completed.clear();
        be_completed.resize(n_be, 0);
        Self {
            scenario,
            engine,
            mode,
            pending,
            inflight,
            backlog: 0,
            inflight_total: 0,
            // Starts past the cache's initial version so the first peek
            // always computes.
            ls_version: 1,
            peek_ls_cache: Cell::new((0, None)),
            ls_rr: 0,
            be_rr: 0,
            be_cursor,
            be_active,
            ls_launch: None,
            be_launch: None,
            stats: RunStats {
                ls_completed,
                be_completed,
                horizon_us: scenario.horizon_us,
                be_preemptions: 0,
                engine_events: 0,
                ls_requeued: 0,
            },
        }
    }

    /// Returns the queue storage and the engine to the context for the
    /// next run; the statistics leave with the caller (hand them back
    /// through [`SimContext::recycle`] once consumed).
    fn finish_into(self, ctx: &mut SimContext) -> RunStats {
        let ServingState {
            engine,
            pending,
            inflight,
            be_cursor,
            be_active,
            stats,
            ..
        } = self;
        ctx.engine = Some(engine);
        ctx.pending = pending;
        ctx.inflight = inflight;
        ctx.be_cursor = be_cursor;
        ctx.be_active = be_active;
        stats
    }

    pub fn now(&self) -> f64 {
        self.engine.now()
    }

    pub fn spec(&self) -> &GpuSpec {
        &self.scenario.spec
    }

    /// Moves pending requests of one LS task into its free inference
    /// slots. A task's admission state only changes when one of its
    /// requests arrives or one of its inferences completes, so this is
    /// all the fast serving loop ever re-evaluates.
    fn admit_task(&mut self, t: usize) {
        while self.inflight[t].len() < self.scenario.ls_instances {
            match self.pending[t].pop_front() {
                Some(arrival) => {
                    self.inflight[t].push_back(Inference {
                        arrival_us: arrival,
                        cursor: 0,
                    });
                    self.inflight_total += 1;
                    self.ls_version += 1;
                }
                None => break,
            }
        }
    }

    /// Moves pending requests into free inference slots across every LS
    /// task — the seed path's full walk after each event.
    fn admit(&mut self) {
        for t in 0..self.scenario.ls.len() {
            self.admit_task(t);
        }
    }

    /// Records an arrived request and admits it if a slot is free.
    fn push_arrival(&mut self, t: usize, at: f64) {
        self.pending[t].push_back(at);
        self.backlog += 1;
        self.ls_version += 1;
        match self.mode {
            ServingMode::Seed => self.admit(),
            ServingMode::Fast => self.admit_task(t),
        }
    }

    /// Version of the LS queue state; unchanged means every LS-side
    /// query ([`peek_ls`](Self::peek_ls),
    /// [`upcoming_ls_kernels_into`](Self::upcoming_ls_kernels_into))
    /// would return exactly what it returned last time. Policies use it
    /// to memoize per-dispatch work across BE-side events.
    pub fn ls_version(&self) -> u64 {
        self.ls_version
    }

    /// Which serving-loop implementation drives this run. Policies that
    /// memoize dispatch work consult this so the `Seed` benchmark arm
    /// keeps the seed's recompute-everything behaviour.
    pub fn serving_mode(&self) -> ServingMode {
        self.mode
    }

    /// Number of LS requests admitted or waiting (queue pressure).
    pub fn ls_backlog(&self) -> usize {
        debug_assert_eq!(
            self.backlog,
            self.pending.iter().map(VecDeque::len).sum::<usize>()
                + self.inflight.iter().map(VecDeque::len).sum::<usize>(),
            "incremental backlog counter drifted from the queues"
        );
        self.backlog
    }

    /// Number of LS requests admitted and in flight (excluding the
    /// pending queue) — the fleet telemetry layer samples this as a
    /// per-lane gauge at controller ticks. O(1) in fast mode.
    pub fn ls_inflight(&self) -> usize {
        if self.mode == ServingMode::Fast {
            debug_assert_eq!(
                self.inflight_total,
                self.inflight.iter().map(VecDeque::len).sum::<usize>(),
                "incremental inflight counter drifted from the queues"
            );
            return self.inflight_total;
        }
        self.inflight.iter().map(VecDeque::len).sum()
    }

    /// Pending + in-flight LS requests of one task — the per-service
    /// slice of [`ls_backlog`](Self::ls_backlog). The fleet's tiered-SLO
    /// layer reads this for per-tier conservation audits and brownout
    /// telemetry; O(1) (two queue lengths).
    pub fn ls_backlog_of(&self, task: usize) -> usize {
        self.pending[task].len() + self.inflight[task].len()
    }

    /// Is any LS kernel ready to launch? O(1) in fast mode; the seed
    /// path re-scans every queue, as the seed serving state did.
    pub fn ls_ready(&self) -> bool {
        if self.mode == ServingMode::Fast {
            debug_assert_eq!(
                self.inflight_total > 0,
                self.inflight.iter().any(|q| !q.is_empty()),
                "incremental inflight counter drifted from the queues"
            );
            return self.inflight_total > 0;
        }
        self.inflight.iter().any(|q| !q.is_empty())
    }

    /// Peeks the next LS kernel in round-robin order. Memoized on
    /// [`ls_version`](Self::ls_version) in fast mode: policies and
    /// `launch_ls` both peek on every dispatch, and most events leave
    /// the LS queues untouched.
    pub fn peek_ls(&self) -> Option<(usize, usize)> {
        if self.mode == ServingMode::Fast {
            let (version, cached) = self.peek_ls_cache.get();
            if version == self.ls_version {
                return cached;
            }
        }
        let result = self.peek_ls_scan();
        self.peek_ls_cache.set((self.ls_version, result));
        result
    }

    /// The seed implementation of [`peek_ls`](Self::peek_ls): a fresh
    /// round-robin scan over every LS queue.
    fn peek_ls_scan(&self) -> Option<(usize, usize)> {
        let n = self.scenario.ls.len();
        for off in 0..n {
            let t = (self.ls_rr + off) % n;
            if let Some(inf) = self.inflight[t].front() {
                return Some((t, inf.cursor));
            }
        }
        None
    }

    /// Upcoming LS kernels (for the tidal sliding window): the next kernel
    /// of every non-empty LS queue plus the successors of the head task.
    ///
    /// Fills a caller-owned buffer (cleared first) so policies invoking
    /// this on every dispatch reuse one allocation across the whole run.
    pub fn upcoming_ls_kernels_into(&self, window: usize, out: &mut Vec<(usize, usize)>) {
        out.clear();
        let n = self.scenario.ls.len();
        for off in 0..n {
            let t = (self.ls_rr + off) % n;
            if let Some(inf) = self.inflight[t].front() {
                let kernels = self.scenario.ls[t].model.kernels.len();
                for c in inf.cursor..kernels.min(inf.cursor + window) {
                    out.push((t, c));
                    if out.len() >= window {
                        return;
                    }
                }
            }
        }
    }

    /// Allocating convenience wrapper around
    /// [`upcoming_ls_kernels_into`](Self::upcoming_ls_kernels_into).
    pub fn upcoming_ls_kernels(&self, window: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(window);
        self.upcoming_ls_kernels_into(window, &mut out);
        out
    }

    /// Peeks the next *active* BE kernel in round-robin order. With every
    /// BE task active (the default) this is exactly the plain round-robin
    /// peek; a cluster controller that parked a task makes the scan skip
    /// it.
    pub fn peek_be(&self) -> Option<(usize, usize)> {
        let n = self.scenario.be.len();
        for off in 0..n {
            let t = (self.be_rr + off) % n;
            if self.be_active[t] {
                return Some((t, self.be_cursor[t]));
            }
        }
        None
    }

    /// Is any BE task resident (active) on this GPU? Policies use this —
    /// rather than `scenario.be.is_empty()` — to decide whether LS work
    /// is co-located: a replica whose BE work all migrated away is
    /// monopolized by LS even though its scenario still lists the tasks.
    pub fn be_present(&self) -> bool {
        self.be_active.iter().any(|&a| a)
    }

    /// Number of active (resident) BE tasks.
    pub fn active_be_count(&self) -> usize {
        self.be_active.iter().filter(|&&a| a).count()
    }

    /// Whether one BE task is active.
    pub fn be_active(&self, task: usize) -> bool {
        self.be_active[task]
    }

    /// Parks (`false`) or resumes (`true`) one BE task. Parking does not
    /// touch a kernel already on the GPU — raise the eviction flag via
    /// [`preempt_be`](Self::preempt_be) if the parked task is the one
    /// running; its closed-loop cursor is preserved either way, so a task
    /// migrating back later resumes its inference where it stopped.
    pub fn set_be_active(&mut self, task: usize, active: bool) {
        self.be_active[task] = active;
    }

    /// Rips a crashed replica's serving state out for re-dispatch: every
    /// pending and in-flight LS request is drained (appended to `out` as
    /// `(task, arrival_us)`, in-flight first, oldest first, per task in
    /// index order) and both active launches are cancelled in the engine
    /// with **no** completion or preemption event — a dead GPU never
    /// reports back. In-flight inferences lose their kernel progress
    /// (the request restarts from kernel 0 wherever the router re-lands
    /// it); BE closed-loop cursors are preserved, so a job migrating to
    /// a survivor — or resuming here after recovery — continues its
    /// inference where it stopped. Even a launch whose eviction flag was
    /// already raised ([`preempt_be`](Self::preempt_be)) is cancelled
    /// outright: the pending `Preempted` event must not fire on a dead
    /// replica, and `be_launch` must not linger as a phantom-active
    /// entry. After a drain the state is quiescent (no launches, no
    /// queued work, backlog counters zeroed) and safe to resume later
    /// via a dispatch.
    pub fn crash_drain(&mut self, out: &mut Vec<(usize, f64)>) {
        if let Some(l) = self.ls_launch.take() {
            self.engine.cancel(l.id);
        }
        if let Some(l) = self.be_launch.take() {
            // Cursor untouched: the kernel never finished, so the task's
            // inference resumes at the same kernel index.
            self.engine.cancel(l.id);
        }
        let mut drained = 0u64;
        for t in 0..self.scenario.ls.len() {
            for inf in self.inflight[t].drain(..) {
                out.push((t, inf.arrival_us));
                drained += 1;
            }
            for at in self.pending[t].drain(..) {
                out.push((t, at));
                drained += 1;
            }
        }
        self.backlog = 0;
        self.inflight_total = 0;
        self.ls_version += 1;
        self.stats.ls_requeued += drained;
    }

    /// Drains every *pending* (not yet admitted) LS request for a
    /// graceful scale-down: queued requests are appended to `out` as
    /// `(task, arrival_us)` (oldest first, per task in index order) for
    /// requeue elsewhere, while admitted in-flight inferences keep
    /// running to completion here — unlike
    /// [`crash_drain`](Self::crash_drain), no kernel progress is lost
    /// and no launch is cancelled. BE cursors are untouched; the caller
    /// evacuates BE jobs separately. Counted as `ls_requeued` — the
    /// drained requests will be re-injected elsewhere, not dropped.
    pub fn drain_pending(&mut self, out: &mut Vec<(usize, f64)>) {
        let mut drained = 0u64;
        for t in 0..self.scenario.ls.len() {
            for at in self.pending[t].drain(..) {
                out.push((t, at));
                drained += 1;
            }
        }
        if drained > 0 {
            self.backlog -= drained as usize;
            self.ls_version += 1;
            self.stats.ls_requeued += drained;
        }
    }

    /// Drops up to `max` *pending* (not yet admitted) requests of one LS
    /// task, newest first — the controller's graceful-degradation shed
    /// when fleet capacity falls below demand. Returns how many were
    /// dropped; the caller accounts for them (they will never complete).
    pub fn shed_pending(&mut self, task: usize, max: usize) -> usize {
        let q = &mut self.pending[task];
        let n = q.len().min(max);
        for _ in 0..n {
            q.pop_back();
        }
        if n > 0 {
            self.backlog -= n;
            self.ls_version += 1;
        }
        n
    }

    pub fn ls_kernel(&self, task: usize, idx: usize) -> &KernelDesc {
        &self.scenario.ls[task].model.kernels[idx]
    }

    pub fn be_kernel(&self, task: usize, idx: usize) -> &KernelDesc {
        &self.scenario.be[task].model.kernels[idx]
    }

    /// Launches the peeked LS kernel with the given resources.
    pub fn launch_ls(&mut self, mask: TpcMask, channels: ChannelSet, thread_fraction: f64) {
        assert!(self.ls_launch.is_none(), "one LS kernel at a time");
        let (task, kernel_idx) = self.peek_ls().expect("no LS kernel ready");
        let kernel = &self.scenario.ls[task].kernels[kernel_idx];
        let id = self.engine.launch_prepared(
            kernel,
            &LaunchConfig {
                mask,
                channels,
                thread_fraction,
                preempt_poll_us: None,
            },
        );
        self.ls_launch = Some(ActiveLaunch {
            id,
            task,
            kernel_idx,
            mask,
            channels,
        });
    }

    /// Launches the peeked BE kernel with the given resources.
    pub fn launch_be(
        &mut self,
        mask: TpcMask,
        channels: ChannelSet,
        thread_fraction: f64,
        poll_us: f64,
    ) {
        assert!(self.be_launch.is_none(), "one BE kernel at a time");
        let (task, kernel_idx) = self.peek_be().expect("no BE task");
        let kernel = &self.scenario.be[task].kernels[kernel_idx];
        let id = self.engine.launch_prepared(
            kernel,
            &LaunchConfig {
                mask,
                channels,
                thread_fraction,
                preempt_poll_us: Some(poll_us),
            },
        );
        self.be_launch = Some(ActiveLaunch {
            id,
            task,
            kernel_idx,
            mask,
            channels,
        });
    }

    /// Raises the eviction flag on the running BE kernel (§7.1).
    pub fn preempt_be(&mut self) {
        if let Some(be) = self.be_launch {
            self.engine.raise_eviction_flag(be.id);
        }
    }

    /// Expands / moves the running BE kernel's resources in place —
    /// persistent-thread kernels pick up newly unmasked TPCs as their
    /// worker blocks cycle (Fig. 13b's elastic growth), and bimodal
    /// tensors switch mappings by pointer swap (§7.2).
    pub fn remask_be(&mut self, mask: TpcMask, channels: ChannelSet) {
        if let Some(be) = self.be_launch.as_mut() {
            if be.mask != mask || be.channels != channels {
                let id = be.id;
                be.mask = mask;
                be.channels = channels;
                self.engine.remask(id, mask, channels);
            }
        }
    }

    /// Prefetches the state's hot event-path memory (engine working set
    /// and the LS queue headers) toward L1 — see [`Engine::prefetch_hot`].
    #[inline]
    pub fn prefetch_hot(&self) {
        self.engine.prefetch_hot();
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.pending.as_ptr() as *const i8, _MM_HINT_T0);
            _mm_prefetch(self.inflight.as_ptr() as *const i8, _MM_HINT_T0);
        }
    }

    fn on_event(&mut self, ev: EngineEvent) {
        // Which LS task freed an inference slot (if any): the only event
        // kind that can unblock an admission.
        let mut freed_slot: Option<usize> = None;
        match ev {
            EngineEvent::Finished { id, at_us } => {
                if self.ls_launch.is_some_and(|l| l.id == id) {
                    let l = self.ls_launch.take().expect("checked");
                    let inf = self.inflight[l.task].front_mut().expect("inference exists");
                    inf.cursor += 1;
                    self.ls_rr = (l.task + 1) % self.scenario.ls.len().max(1);
                    self.ls_version += 1;
                    if inf.cursor >= self.scenario.ls[l.task].model.kernels.len() {
                        let done = self.inflight[l.task].pop_front().expect("present");
                        self.backlog -= 1;
                        self.inflight_total -= 1;
                        freed_slot = Some(l.task);
                        self.stats.ls_completed[l.task].push(CompletedRequest {
                            arrival_us: done.arrival_us,
                            done_us: at_us,
                        });
                    }
                } else if self.be_launch.is_some_and(|l| l.id == id) {
                    let l = self.be_launch.take().expect("checked");
                    self.be_cursor[l.task] += 1;
                    if self.be_cursor[l.task] >= self.scenario.be[l.task].model.kernels.len() {
                        self.be_cursor[l.task] = 0;
                        self.stats.be_completed[l.task] += 1;
                        self.be_rr = (l.task + 1) % self.scenario.be.len().max(1);
                    }
                }
            }
            EngineEvent::Preempted { id, .. } => {
                if self.be_launch.is_some_and(|l| l.id == id) {
                    // Progress discarded; the same kernel will be
                    // relaunched (cursor unchanged).
                    self.be_launch = None;
                    self.stats.be_preemptions += 1;
                }
            }
        }
        match self.mode {
            // Seed behaviour: re-walk every LS task after every event.
            ServingMode::Seed => self.admit(),
            // Only the task whose inference completed can admit anything
            // new; every other event leaves the queues untouched.
            ServingMode::Fast => {
                if let Some(t) = freed_slot {
                    self.admit_task(t);
                }
            }
        }
    }
}

/// A GPU sharing policy: decides resources for LS / BE kernels.
///
/// `Send` is a supertrait: the fleet clock advances each replica —
/// policy included — on whichever pool worker steals it, so policies
/// must be movable across threads (they are plain data; no policy in
/// the workspace ever held thread-affine state).
pub trait Policy: Send {
    fn name(&self) -> &'static str;

    /// Fill the GPU. Called whenever the state changes (arrival, kernel
    /// completion, preemption, timer).
    fn dispatch(&mut self, st: &mut ServingState);

    /// Reaction to a new LS request (e.g. SGDRC raises the eviction flag).
    fn on_ls_arrival(&mut self, st: &mut ServingState) {
        let _ = st;
    }

    /// Next policy-internal timer (absolute µs), e.g. TGS context-switch
    /// completion.
    fn next_timer(&self) -> Option<f64> {
        None
    }

    /// Whether this policy ever schedules internal timers. The fast
    /// serving loop skips the per-event [`next_timer`](Self::next_timer)
    /// query entirely when this returns `false`. Defaults to `true` so a
    /// policy that implements [`next_timer`](Self::next_timer) without
    /// overriding this still gets its timers; timer-less policies
    /// override it to `false` as a pure optimization.
    fn has_timers(&self) -> bool {
        true
    }

    /// Called once at the start of every [`run`], before the first
    /// dispatch. Policies carrying memoized per-run state (e.g. caches
    /// keyed on [`ServingState::ls_version`], which restarts per run)
    /// reset it here so one policy instance can serve several runs.
    fn on_run_start(&mut self, st: &mut ServingState) {
        let _ = st;
    }
}

/// Selects the serving-loop implementation. Both modes yield identical
/// [`RunStats`]; only the per-event cost differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServingMode {
    /// The pre-refactor hot path: an O(n_ls) scan over per-task arrival
    /// cursors once per simulated event, a full re-admission walk over
    /// every LS task after every event, per-dispatch policy recomputes
    /// (no version-keyed memoization), and the engine's eager rate
    /// maintenance (full recompute + emit per running-set change). Kept
    /// as the "before" arm of the `BENCH_serving` measurement and as the
    /// oracle for the equivalence tests.
    Seed,
    /// Consumes the pre-merged arrival stream with a single cursor (O(1)
    /// per event) and re-admits only the task whose queues changed.
    #[default]
    Fast,
}

/// The seed path's arrival source: a fresh O(n_ls) scan over per-task
/// cursors on every peek. (The fast path consumes the pre-merged stream
/// through [`ReplicaSim`] instead.)
struct SeedArrivalCursor<'t> {
    per_task: &'t [Vec<f64>],
    cursors: Vec<usize>,
}

impl SeedArrivalCursor<'_> {
    fn peek(&self) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (t, &c) in self.cursors.iter().enumerate() {
            if let Some(&at) = self.per_task[t].get(c) {
                if best.is_none_or(|(_, b)| at < b) {
                    best = Some((t, at));
                }
            }
        }
        best
    }

    fn pop(&mut self, task: usize) {
        self.cursors[task] += 1;
    }
}

/// A resumable serving simulation for one GPU replica.
///
/// [`run_configured_in`]'s fast path drives a whole scenario to the
/// horizon in one call; a *cluster* interleaves many replicas behind a
/// request router, which needs to (a) quiesce every replica up to an
/// arrival's timestamp, (b) read replica state to pick a target, and
/// (c) inject the arrival into that target only. `ReplicaSim` exposes the
/// fast serving loop in exactly those increments — the batch fast path is
/// itself implemented on top of it, so a 1-replica cluster fed the same
/// merged stream reproduces a batch run bit for bit (enforced by
/// `workload/tests/cluster.rs`).
///
/// Lifecycle: [`prepare`](Self::prepare) → optional state setup (e.g.
/// parking BE tasks) → [`begin`](Self::begin) → any interleaving of
/// [`advance`](Self::advance) / [`inject_arrival`](Self::inject_arrival)
/// / [`dispatch`](Self::dispatch) → final `advance(policy, None)` →
/// [`finish`](Self::finish).
pub struct ReplicaSim<'s> {
    st: ServingState<'s>,
    use_timers: bool,
}

/// The candidate fold shared by [`ReplicaSim::next_pending_at`] and
/// [`ReplicaSim::advance_hinted`] — one definition, so the hint the
/// advance loop hands out is structurally the same value a fresh
/// `next_pending_at` would compute.
fn fold_pending(event: Option<f64>, timer: Option<f64>) -> Option<f64> {
    match (event, timer) {
        (Some(e), Some(t)) => Some(e.min(t)),
        (Some(e), None) => Some(e),
        (None, Some(t)) => Some(t),
        (None, None) => None,
    }
}

impl<'s> ReplicaSim<'s> {
    /// Builds the simulation (fast serving mode) from a context's
    /// recycled storage without touching the policy — callers may
    /// configure the state (BE activity, rate mode) before the first
    /// dispatch.
    pub fn prepare(scenario: &'s Scenario, ctx: &mut SimContext) -> Self {
        Self::prepare_with_rate(scenario, RateMode::Fast, ctx)
    }

    /// [`prepare`](Self::prepare) with an explicit engine rate mode.
    pub fn prepare_with_rate(scenario: &'s Scenario, rate: RateMode, ctx: &mut SimContext) -> Self {
        let mut st = ServingState::new_in(scenario, ServingMode::Fast, ctx);
        st.engine.set_rate_mode(rate);
        st.engine.set_eager_rates(false);
        Self {
            st,
            use_timers: true,
        }
    }

    /// Starts the run: queries the policy's timer capability, resets its
    /// per-run state and performs the initial dispatch.
    pub fn begin(&mut self, policy: &mut dyn Policy) {
        self.use_timers = policy.has_timers();
        policy.on_run_start(&mut self.st);
        policy.dispatch(&mut self.st);
    }

    /// The serving state (read-only): queue pressure, launches,
    /// accumulated statistics.
    pub fn state(&self) -> &ServingState<'s> {
        &self.st
    }

    /// Prefetches the replica's hot advance-path memory toward L1 — a
    /// pure cache hint the fleet clock issues one lane ahead of its
    /// epoch batch. See [`Engine::prefetch_hot`].
    #[inline]
    pub fn prefetch_hot(&self) {
        self.st.prefetch_hot();
    }

    /// Mutable serving state access for controllers (BE activity
    /// toggles, targeted preemption). Call [`dispatch`](Self::dispatch)
    /// afterwards so the policy reacts to the mutation.
    pub fn state_mut(&mut self) -> &mut ServingState<'s> {
        &mut self.st
    }

    /// Re-runs the policy's dispatch against the current state — the
    /// follow-up to any external mutation through
    /// [`state_mut`](Self::state_mut).
    pub fn dispatch(&mut self, policy: &mut dyn Policy) {
        policy.dispatch(&mut self.st);
    }

    /// The two pending-work candidates [`advance`](Self::advance) folds
    /// each iteration: the engine's memoized next event, and the
    /// policy's next *live* timer (stale, non-future timers dropped).
    /// Shared by `advance` and [`next_pending_at`](Self::next_pending_at)
    /// so the no-op guarantee below is structural, not a convention two
    /// copies of the fold would have to keep honoring.
    fn pending_candidates<P: Policy + ?Sized>(&self, policy: &P) -> (Option<f64>, Option<f64>) {
        let event = self.st.engine.next_event_at();
        let timer = if self.use_timers {
            policy.next_timer().filter(|&t| t > self.st.now() + 1e-9)
        } else {
            None
        };
        (event, timer)
    }

    /// The earliest pending work instant — engine event or live policy
    /// timer — or `None` when the replica is idle. Built on the same
    /// [`pending_candidates`](Self::pending_candidates) fold `advance`
    /// consumes, so `advance(policy, Some(t))` is a guaranteed no-op
    /// (no state change, returns `true`) whenever
    /// `next_pending_at() >= Some(t)` — the property the parallel fleet
    /// clock uses to skip idle replicas without dispatching them to a
    /// worker.
    pub fn next_pending_at(&self, policy: &dyn Policy) -> Option<f64> {
        let (event, timer) = self.pending_candidates(policy);
        fold_pending(event, timer)
    }

    /// Processes engine events and policy timers that precede an arrival
    /// at `next_arrival_us` (or all remaining work when `None`), with the
    /// batch loop's exact ordering and tie-breaking. Returns `true` when
    /// it stopped because the supplied arrival is due next (the caller
    /// should [`inject_arrival`](Self::inject_arrival) it), `false` when
    /// the horizon was reached or the replica went idle forever.
    pub fn advance(&mut self, policy: &mut dyn Policy, next_arrival_us: Option<f64>) -> bool {
        self.advance_hinted(policy, next_arrival_us).0
    }

    /// [`advance`](Self::advance), plus the pending-work instant left at
    /// exit: the second element equals what
    /// [`next_pending_at`](Self::next_pending_at) would return if called
    /// immediately after — it *is* the candidate fold the loop's final
    /// iteration computed to decide it was done, handed out so hot
    /// callers (the fleet clock's lane refresh) skip re-deriving it.
    /// Generic over the concrete policy so a monomorphic caller gets the
    /// per-event `next_timer`/`dispatch` calls devirtualized and
    /// inlined; `dyn Policy` callers lose nothing.
    pub fn advance_hinted<P: Policy + ?Sized>(
        &mut self,
        policy: &mut P,
        next_arrival_us: Option<f64>,
    ) -> (bool, Option<f64>) {
        loop {
            // The engine's next event is memoized inside the engine —
            // the same value serves the min fold below and the engine's
            // own integration this iteration.
            let (event, timer) = self.pending_candidates(&*policy);
            // Earliest of the three candidate times, without
            // materializing a candidate list (this runs once per
            // simulated event).
            let mut next = f64::INFINITY;
            if let Some(at) = next_arrival_us {
                next = at;
            }
            if let Some(at) = event {
                next = next.min(at);
            }
            if let Some(at) = timer {
                next = next.min(at);
            }
            if next == f64::INFINITY {
                return (false, fold_pending(event, timer)); // idle with no arrivals left
            }
            if next > self.st.scenario.horizon_us {
                return (false, fold_pending(event, timer));
            }
            // Arrival strictly first?
            if next_arrival_us.is_some_and(|at| at <= next + 1e-9)
                && event.is_none_or(|e| next_arrival_us.expect("checked") <= e)
            {
                return (true, fold_pending(event, timer));
            } else if event.is_some_and(|e| e <= next + 1e-9) {
                let ev = self.st.engine.step().expect("event was due");
                self.st.on_event(ev);
            } else {
                // Timer only.
                self.st.engine.advance_idle(next);
            }
            policy.dispatch(&mut self.st);
        }
    }

    /// Delivers one routed request to LS task `task` at `at_us` (which
    /// must be the timestamp [`advance`](Self::advance) just stopped at):
    /// idles the engine forward, enqueues the request, and gives the
    /// policy its arrival reaction plus a dispatch.
    pub fn inject_arrival(&mut self, policy: &mut dyn Policy, task: usize, at_us: f64) {
        self.inject_requeued(policy, task, at_us, at_us);
    }

    /// [`inject_arrival`](Self::inject_arrival) for a request re-dispatched
    /// after a crash drain: the engine advances to the re-dispatch instant
    /// `at_us`, but the request keeps its **original** arrival timestamp
    /// `arrival_us` — end-to-end latency (and therefore SLO accounting)
    /// includes the outage, the retry backoff and the re-executed kernels.
    /// A plain arrival is the `arrival_us == at_us` special case.
    pub fn inject_requeued(
        &mut self,
        policy: &mut dyn Policy,
        task: usize,
        arrival_us: f64,
        at_us: f64,
    ) {
        self.st.engine.advance_idle(at_us);
        self.st.push_arrival(task, arrival_us);
        policy.on_ls_arrival(&mut self.st);
        policy.dispatch(&mut self.st);
    }

    /// Ends the run: records the actually simulated time and event count
    /// into the statistics and returns the storage to the context.
    pub fn finish(mut self, ctx: &mut SimContext) -> RunStats {
        self.st.stats.horizon_us = self.st.now().min(self.st.scenario.horizon_us);
        self.st.stats.engine_events = self.st.engine.events_processed();
        self.st.finish_into(ctx)
    }
}

/// Compile-time contract for the parallel fleet clock: the whole
/// replica stack — contexts, the resumable simulation (engine, queues,
/// statistics) and, via the `Policy: Send` supertrait, every policy —
/// crosses worker threads when a cluster advances its replicas in
/// parallel. A new field that is not `Send` fails here, not in a
/// distant cluster build error.
#[allow(dead_code)]
fn _assert_replica_stack_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<SimContext>();
    assert_send::<ReplicaSim<'static>>();
    assert_send::<Box<dyn Policy>>();
}

/// Runs a scenario under a policy to the horizon; returns the statistics.
pub fn run(policy: &mut dyn Policy, scenario: &Scenario) -> RunStats {
    run_configured(policy, scenario, RateMode::Fast, ServingMode::Fast)
}

/// [`run`] with an explicit engine rate mode. `RateMode::Reference`
/// replays the seed engine's per-event behaviour (descriptor deep-clones,
/// allocating rate evaluation, no memoization) — the "before" arm of the
/// `BENCH_exec_sim` measurement.
pub fn run_with_mode(policy: &mut dyn Policy, scenario: &Scenario, mode: RateMode) -> RunStats {
    run_configured(policy, scenario, mode, ServingMode::Fast)
}

/// [`run`] with both the engine rate mode and the serving-loop mode
/// explicit — the full before/after matrix used by the benchmarks and
/// the equivalence tests.
pub fn run_configured(
    policy: &mut dyn Policy,
    scenario: &Scenario,
    rate: RateMode,
    serving: ServingMode,
) -> RunStats {
    run_configured_in(policy, scenario, rate, serving, &mut SimContext::new())
}

/// [`run`] against a reusable [`SimContext`] (default fast modes): the
/// sweep subsystem's per-cell entry point.
pub fn run_in_context(
    policy: &mut dyn Policy,
    scenario: &Scenario,
    ctx: &mut SimContext,
) -> RunStats {
    run_configured_in(policy, scenario, RateMode::Fast, ServingMode::Fast, ctx)
}

/// [`run_configured`] with the simulation storage supplied by the
/// caller. A fresh [`SimContext`] reproduces the fresh-allocation path
/// exactly; a reused one costs zero steady-state allocation per run.
pub fn run_configured_in(
    policy: &mut dyn Policy,
    scenario: &Scenario,
    rate: RateMode,
    serving: ServingMode,
    ctx: &mut SimContext,
) -> RunStats {
    // The fast path is the resumable replica pump fed the merged stream —
    // the same machinery a cluster drives arrival-by-arrival, here run to
    // completion in one call.
    if serving == ServingMode::Fast {
        let mut sim = ReplicaSim::prepare_with_rate(scenario, rate, ctx);
        sim.begin(policy);
        let merged = scenario.arrivals.merged();
        let mut next = 0usize;
        loop {
            match merged.get(next) {
                Some(a) => {
                    if !sim.advance(policy, Some(a.at_us)) {
                        break; // horizon reached before the arrival
                    }
                    next += 1;
                    sim.inject_arrival(policy, a.task as usize, a.at_us);
                }
                None => {
                    sim.advance(policy, None);
                    break;
                }
            }
        }
        return sim.finish(ctx);
    }

    let mut st = ServingState::new_in(scenario, serving, ctx);
    st.engine.set_rate_mode(rate);
    st.engine.set_eager_rates(true);
    let mut arrivals = SeedArrivalCursor {
        per_task: scenario.arrivals.per_task(),
        cursors: vec![0usize; scenario.arrivals.num_tasks()],
    };

    policy.on_run_start(&mut st);
    policy.dispatch(&mut st);
    loop {
        let arrival = arrivals.peek();
        // Memoized inside the engine — the same value serves the min fold
        // below and the engine's own integration this iteration.
        let event = st.engine.next_event_at();
        // Stale (non-future) timers cannot make progress; drop them. The
        // seed loop queried the policy timer on every iteration.
        let timer = policy.next_timer().filter(|&t| t > st.now() + 1e-9);
        // Earliest of the three candidate times, without materializing a
        // candidate list (this runs once per simulated event).
        let mut next = f64::INFINITY;
        if let Some((_, at)) = arrival {
            next = at;
        }
        if let Some(at) = event {
            next = next.min(at);
        }
        if let Some(at) = timer {
            next = next.min(at);
        }
        if next == f64::INFINITY {
            break; // idle with no arrivals left
        }
        if next > scenario.horizon_us {
            break;
        }
        // Arrival strictly first?
        if arrival.is_some_and(|(_, at)| at <= next + 1e-9)
            && event.is_none_or(|e| arrival.expect("checked").1 <= e)
        {
            let (t, at) = arrival.expect("checked");
            st.engine.advance_idle(at);
            arrivals.pop(t);
            st.push_arrival(t, at);
            policy.on_ls_arrival(&mut st);
        } else if event.is_some_and(|e| e <= next + 1e-9) {
            let ev = st.engine.step().expect("event was due");
            st.on_event(ev);
        } else {
            // Timer only.
            st.engine.advance_idle(next);
        }
        policy.dispatch(&mut st);
    }
    // Record the actually simulated time (the loop can end early when the
    // trace drains), not unconditionally the configured horizon.
    st.stats.horizon_us = st.now().min(scenario.horizon_us);
    st.stats.engine_events = st.engine.events_processed();
    st.finish_into(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sgdrc, SgdrcConfig};
    use dnn::zoo::{build, ModelId};
    use dnn::CompileOptions;
    use gpu_spec::GpuModel;

    fn two_be_scenario(horizon_us: f64) -> Scenario {
        let spec = GpuModel::RtxA2000.spec();
        let compile = |id| {
            Task::new(
                dnn::compile(build(id), &spec, CompileOptions::default()),
                &spec,
            )
        };
        let ls = vec![compile(ModelId::MobileNetV3)];
        let be = vec![compile(ModelId::DenseNet161), compile(ModelId::ResNet152)];
        let arrivals: Vec<f64> = (0..)
            .map(|i| i as f64 * 10_000.0)
            .take_while(|&t| t < horizon_us)
            .collect();
        Scenario::new(spec, ls, be, 4, vec![arrivals], horizon_us)
    }

    #[test]
    fn parked_be_tasks_are_skipped_and_resumable() {
        let sc = two_be_scenario(300_000.0);
        let mut policy = Sgdrc::new(&sc.spec, SgdrcConfig::default());

        // Park BE task 1 before the first dispatch: only task 0 runs.
        let mut ctx = SimContext::new();
        let mut sim = ReplicaSim::prepare(&sc, &mut ctx);
        sim.state_mut().set_be_active(1, false);
        assert!(sim.state().be_present());
        assert_eq!(sim.state().active_be_count(), 1);
        assert_eq!(sim.state().peek_be(), Some((0, 0)));
        sim.begin(&mut policy);
        sim.advance(&mut policy, None);
        let stats = sim.finish(&mut ctx);
        assert!(stats.be_completed[0] > 0, "active BE task must progress");
        assert_eq!(stats.be_completed[1], 0, "parked BE task must not run");

        // Both active (the default `run` path): both make progress, and
        // the run with task 1 parked completed more of task 0 than the
        // shared run did.
        let mut both_policy = Sgdrc::new(&sc.spec, SgdrcConfig::default());
        let both = run(&mut both_policy, &sc);
        assert!(both.be_completed[0] > 0 && both.be_completed[1] > 0);
        assert!(stats.be_completed[0] >= both.be_completed[0]);

        // Everything parked: no BE kernel is ever offered.
        let mut none_ctx = SimContext::new();
        let mut none_sim = ReplicaSim::prepare(&sc, &mut none_ctx);
        none_sim.state_mut().set_be_active(0, false);
        none_sim.state_mut().set_be_active(1, false);
        assert!(!none_sim.state().be_present());
        assert_eq!(none_sim.state().peek_be(), None);
        let mut none_policy = Sgdrc::new(&sc.spec, SgdrcConfig::default());
        none_sim.begin(&mut none_policy);
        // The pump takes routed arrivals, not the scenario's own trace.
        for a in sc.arrivals.merged().to_vec() {
            if !none_sim.advance(&mut none_policy, Some(a.at_us)) {
                break;
            }
            none_sim.inject_arrival(&mut none_policy, a.task as usize, a.at_us);
        }
        none_sim.advance(&mut none_policy, None);
        let none = none_sim.finish(&mut none_ctx);
        assert_eq!(none.be_completed, vec![0, 0]);
        assert!(
            !none.ls_completed[0].is_empty(),
            "LS serving continues without BE work"
        );
    }

    #[test]
    fn crash_drain_requeues_every_queued_request_and_cancels_launches() {
        let sc = two_be_scenario(300_000.0);
        let mut ctx = SimContext::new();
        let mut policy = Sgdrc::new(&sc.spec, SgdrcConfig::default());
        let mut sim = ReplicaSim::prepare(&sc, &mut ctx);
        sim.begin(&mut policy);
        // Pump a burst of arrivals in, then advance a little so some are
        // in flight and kernels are on the GPU.
        for i in 0..8 {
            let at = 1_000.0 + i as f64;
            assert!(sim.advance(&mut policy, Some(at)));
            sim.inject_arrival(&mut policy, 0, at);
        }
        assert!(sim.advance(&mut policy, Some(2_000.0)));
        let backlog_before = sim.state().ls_backlog();
        assert!(backlog_before > 0, "setup: queued work exists");
        assert!(
            sim.state().ls_launch.is_some() || sim.state().be_launch.is_some(),
            "setup: something is running"
        );

        let mut drained = Vec::new();
        sim.state_mut().crash_drain(&mut drained);
        let st = sim.state();
        assert_eq!(drained.len(), backlog_before, "every request drained");
        assert!(drained.iter().all(|&(t, at)| t == 0 && at >= 1_000.0));
        assert_eq!(st.ls_backlog(), 0);
        assert!(st.ls_launch.is_none() && st.be_launch.is_none());
        assert_eq!(st.engine.running_count(), 0, "launches cancelled");
        assert_eq!(st.stats.ls_requeued, backlog_before as u64);
        // A drained replica is quiescent: no engine events, no completions
        // appear out of thin air.
        let completed_before: usize = st.stats.ls_completed.iter().map(Vec::len).sum();
        assert!(!sim.advance(&mut policy, None));
        let completed_after: usize = sim.state().stats.ls_completed.iter().map(Vec::len).sum();
        assert_eq!(completed_before, completed_after);
        let _ = sim.finish(&mut ctx);
    }

    #[test]
    fn drain_pending_requeues_queued_work_but_finishes_inflight() {
        let sc = two_be_scenario(300_000.0);
        let mut ctx = SimContext::new();
        let mut policy = Sgdrc::new(&sc.spec, SgdrcConfig::default());
        let mut sim = ReplicaSim::prepare(&sc, &mut ctx);
        sim.begin(&mut policy);
        for i in 0..8 {
            let at = 1_000.0 + i as f64;
            assert!(sim.advance(&mut policy, Some(at)));
            sim.inject_arrival(&mut policy, 0, at);
        }
        assert!(sim.advance(&mut policy, Some(2_000.0)));
        let st = sim.state();
        let inflight_before: usize = st.inflight.iter().map(VecDeque::len).sum();
        let pending_before: usize = st.pending.iter().map(VecDeque::len).sum();
        assert!(inflight_before > 0, "setup: admitted work exists");
        assert!(pending_before > 0, "setup: queued work exists");

        let done_before = st.stats.ls_completed[0].len();

        let mut drained = Vec::new();
        sim.state_mut().drain_pending(&mut drained);
        let st = sim.state();
        assert_eq!(drained.len(), pending_before, "only pending drained");
        assert!(drained.iter().all(|&(t, at)| t == 0 && at >= 1_000.0));
        assert_eq!(
            st.ls_backlog(),
            inflight_before,
            "in-flight requests stay admitted"
        );
        assert_eq!(st.stats.ls_requeued, pending_before as u64);
        // Unlike a crash, the replica keeps serving: every admitted
        // request completes in place.
        assert!(sim.state().ls_launch.is_some() || sim.state().be_launch.is_some());
        while sim.advance(&mut policy, None) {}
        let done = sim.state().stats.ls_completed[0].len();
        assert_eq!(
            done,
            done_before + inflight_before,
            "admitted work ran to completion"
        );
        let _ = sim.finish(&mut ctx);
    }

    /// Satellite regression: `preempt_be` raises the eviction flag, and the
    /// `Preempted` event normally clears `be_launch` later. A crash drain
    /// in between must not leave a phantom-active BE entry — no stale
    /// `be_launch`, no pending preemption event firing on the dead
    /// replica, no preemption counted, and the parked task invisible to
    /// `peek_be`.
    #[test]
    fn preempt_then_crash_drain_leaves_no_phantom_active_be() {
        let sc = two_be_scenario(300_000.0);
        let mut ctx = SimContext::new();
        let mut policy = Sgdrc::new(&sc.spec, SgdrcConfig::default());
        let mut sim = ReplicaSim::prepare(&sc, &mut ctx);
        sim.begin(&mut policy);
        assert!(sim.advance(&mut policy, Some(5_000.0)));
        sim.inject_arrival(&mut policy, 0, 5_000.0);
        assert!(sim.advance(&mut policy, Some(6_000.0)));
        // Make sure a BE kernel is actually resident before preempting.
        assert!(sim.state().be_launch.is_some(), "setup: BE kernel running");
        let be_task = sim.state().be_launch.expect("checked").task;
        let preemptions_before = sim.state().stats.be_preemptions;

        // Controller-style forced preemption (migration parks the task),
        // immediately followed by the replica dying.
        let st = sim.state_mut();
        st.set_be_active(be_task, false);
        st.preempt_be();
        let mut drained = Vec::new();
        st.crash_drain(&mut drained);

        let st = sim.state();
        assert!(st.be_launch.is_none(), "phantom-active be_launch survived");
        assert!(!st.be_active(be_task), "parked task still active");
        assert!(
            st.peek_be().is_none_or(|(t, _)| t != be_task),
            "peek_be offered the parked task"
        );
        assert_eq!(st.engine.running_count(), 0);
        assert_eq!(
            st.stats.be_preemptions, preemptions_before,
            "the cancelled eviction must not count as a preemption"
        );
        // The pending eviction deadline must not fire after the drain.
        assert!(!sim.advance(&mut policy, None));
        assert_eq!(sim.state().stats.be_preemptions, preemptions_before);

        // Recovery: reactivate, dispatch, and BE work resumes with the
        // cursor it crashed at.
        let cursor = sim.state().be_cursor[be_task];
        sim.state_mut().set_be_active(be_task, true);
        assert_eq!(sim.state().be_cursor[be_task], cursor, "cursor preserved");
        sim.dispatch(&mut policy);
        assert!(
            sim.state().be_launch.is_some() || sim.state().ls_launch.is_some(),
            "replica serves again after recovery"
        );
        let _ = sim.finish(&mut ctx);
    }

    #[test]
    fn shed_pending_drops_newest_first_and_fixes_the_backlog() {
        let sc = two_be_scenario(300_000.0);
        let mut ctx = SimContext::new();
        let mut policy = Sgdrc::new(&sc.spec, SgdrcConfig::default());
        let mut sim = ReplicaSim::prepare(&sc, &mut ctx);
        sim.begin(&mut policy);
        for i in 0..10 {
            let at = 1_000.0 + i as f64;
            assert!(sim.advance(&mut policy, Some(at)));
            sim.inject_arrival(&mut policy, 0, at);
        }
        let before = sim.state().ls_backlog();
        let shed = sim.state_mut().shed_pending(0, 3);
        assert!(shed <= 3);
        assert_eq!(sim.state().ls_backlog(), before - shed);
        // Shedding more than exists drops only what is there; only
        // in-flight work remains afterwards.
        let _ = sim.state_mut().shed_pending(0, usize::MAX);
        assert_eq!(
            sim.state().ls_backlog(),
            sim.state().inflight[0].len(),
            "pending fully shed"
        );
        sim.advance(&mut policy, None);
        let _ = sim.finish(&mut ctx);
    }

    #[test]
    fn replica_sim_injection_reproduces_the_batch_run() {
        // Driving the pump arrival-by-arrival (the cluster's usage) must
        // equal the batch fast path bit for bit.
        let sc = two_be_scenario(200_000.0);
        let mut batch_policy = Sgdrc::new(&sc.spec, SgdrcConfig::default());
        let batch = run(&mut batch_policy, &sc);

        let mut ctx = SimContext::new();
        let mut policy = Sgdrc::new(&sc.spec, SgdrcConfig::default());
        let mut sim = ReplicaSim::prepare(&sc, &mut ctx);
        sim.begin(&mut policy);
        for a in sc.arrivals.merged().to_vec() {
            if !sim.advance(&mut policy, Some(a.at_us)) {
                break;
            }
            sim.inject_arrival(&mut policy, a.task as usize, a.at_us);
        }
        sim.advance(&mut policy, None);
        let stepped = sim.finish(&mut ctx);
        assert_eq!(batch, stepped);
    }
}
