//! The SGDRC policy: tidal SM masking (§7.1) + dynamic VRAM channel
//! allocation with bimodal tensors (§7.2).
//!
//! * LS kernels get `SM_LS` TPCs — the sliding-window maximum of the
//!   offline-profiled minimum TPC counts of upcoming LS kernels (Fig. 13b).
//! * The BE kernel gets every remaining TPC; when an LS kernel needs TPCs
//!   the BE kernel occupies, the eviction flag preempts it (Fig. 13a) and
//!   it restarts on the complement.
//! * Channel allocation follows the bimodal-tensor state machine
//!   (Fig. 14): under colocation, memory-bound LS kernels use the LS
//!   channel subset and memory-bound BE kernels the `Ch_BE` subset; under
//!   monopolization everything maps to all channels.
//!
//! `SgdrcConfig::static_partition` turns the policy into the paper's
//! *SGDRC (Static)* baseline: a fixed even SM split and fixed channel
//! split, with no tidal scaling.

use crate::serving::{Policy, ServingMode, ServingState};
use coloring::split_channels;
use exec_sim::{ChannelSet, TpcMask};
use gpu_spec::GpuSpec;

/// Tunables of the SGDRC policy (§6: `Ch_BE` = 1/3; §7.1 sliding window).
#[derive(Debug, Clone)]
pub struct SgdrcConfig {
    /// Fraction of VRAM channels reserved for BE under colocation.
    pub ch_be: f64,
    /// Sliding-window length (upcoming LS kernels) for `SM_LS`.
    pub window: usize,
    /// BE eviction-flag polling interval, µs.
    pub poll_us: f64,
    /// Run as the SGDRC (Static) baseline.
    pub static_partition: bool,
}

impl Default for SgdrcConfig {
    fn default() -> Self {
        Self {
            ch_be: 1.0 / 3.0,
            window: 4,
            poll_us: 2.0,
            static_partition: false,
        }
    }
}

/// The SGDRC scheduler.
pub struct Sgdrc {
    cfg: SgdrcConfig,
    ls_channels: ChannelSet,
    be_channels: ChannelSet,
    all_channels: ChannelSet,
    num_tpcs: u32,
    /// The current LS TPC reservation (the "tide level"). Grows eagerly to
    /// the sliding-window requirement — preempting the BE kernel if it
    /// overlaps — and recedes when the window shrinks or the LS queue
    /// drains. The reservation's stability is the point of the sliding
    /// window (§7.1): consecutive LS kernels fit inside it without
    /// re-preempting BE work.
    ls_region: u32,
    /// Reusable buffer for the sliding window query (the dispatch path
    /// runs once per engine event and must not allocate).
    window_buf: Vec<(usize, usize)>,
    /// Memoized `(ls_version, SM_LS)` of the last sliding-window query.
    /// BE completions, preemptions and timers leave the LS queues — and
    /// therefore the window — untouched, so roughly half of all
    /// dispatches reuse the previous answer. Only consulted in
    /// `ServingMode::Fast`; the seed benchmark arm recomputes every
    /// dispatch, as the seed policy did.
    sm_ls_cache: (u64, u32),
}

impl Sgdrc {
    pub fn new(spec: &GpuSpec, cfg: SgdrcConfig) -> Self {
        let split = split_channels(spec, cfg.ch_be);
        Self {
            ls_channels: ChannelSet::from_channels(&split.ls_channels),
            be_channels: ChannelSet::from_channels(&split.be_channels),
            all_channels: ChannelSet::all(spec),
            num_tpcs: spec.num_tpcs,
            cfg,
            ls_region: 0,
            window_buf: Vec::new(),
            // Version 0 never matches a live state (they start at 1).
            sm_ls_cache: (0, 0),
        }
    }

    /// Re-targets an existing instance at a (possibly different) GPU and
    /// configuration, reusing the sliding-window buffer's allocation.
    /// Sweeps keep one `Sgdrc` per worker across thousands of cells and
    /// reconfigure it when the cell's GPU changes instead of building a
    /// fresh policy per cell.
    pub fn reconfigure(&mut self, spec: &GpuSpec, cfg: SgdrcConfig) {
        let split = split_channels(spec, cfg.ch_be);
        self.ls_channels = ChannelSet::from_channels(&split.ls_channels);
        self.be_channels = ChannelSet::from_channels(&split.be_channels);
        self.all_channels = ChannelSet::all(spec);
        self.num_tpcs = spec.num_tpcs;
        self.cfg = cfg;
        self.ls_region = 0;
        self.sm_ls_cache = (0, 0);
    }

    /// §7.1: `SM_LS` for the next LS kernel — the max of the profiled
    /// minimum TPC counts over the sliding window of upcoming LS kernels.
    fn sm_ls(&mut self, st: &ServingState) -> u32 {
        if self.cfg.static_partition {
            return self.num_tpcs / 2;
        }
        let memoizable = st.serving_mode() == ServingMode::Fast;
        if memoizable && self.sm_ls_cache.0 == st.ls_version() {
            return self.sm_ls_cache.1;
        }
        st.upcoming_ls_kernels_into(self.cfg.window, &mut self.window_buf);
        let sm = self
            .window_buf
            .iter()
            .map(|&(t, k)| st.scenario.ls[t].profile.kernels[k].min_tpcs)
            .max()
            .unwrap_or(1)
            .min(self.num_tpcs);
        if memoizable {
            self.sm_ls_cache = (st.ls_version(), sm);
        }
        sm
    }
}

impl Policy for Sgdrc {
    fn name(&self) -> &'static str {
        if self.cfg.static_partition {
            "SGDRC (Static)"
        } else {
            "SGDRC"
        }
    }

    fn has_timers(&self) -> bool {
        false
    }

    fn on_run_start(&mut self, _st: &mut ServingState) {
        // The cache is keyed on the run's `ls_version`, which restarts
        // per run — a stale entry from a previous run could collide.
        self.sm_ls_cache = (0, 0);
        self.ls_region = 0;
    }

    fn dispatch(&mut self, st: &mut ServingState) {
        // ---- tide level --------------------------------------------------
        let ls_active = st.ls_ready() || st.ls_launch.is_some();
        if self.cfg.static_partition {
            self.ls_region = self.num_tpcs / 2;
        } else if !ls_active {
            self.ls_region = 0; // monopolization: BE may take everything
        } else {
            // Quantize the sliding-window requirement so the tide moves in
            // coarse steps: fine-grained fluctuation would preempt the BE
            // kernel (a full restart) on every re-growth.
            let needed = self.sm_ls(st);
            let quantized = if needed * 4 > self.num_tpcs * 3 {
                self.num_tpcs
            } else {
                needed.div_ceil(4) * 4
            };
            if quantized > self.ls_region {
                self.ls_region = quantized;
                // Growing tide: evict the BE kernel from the newly claimed
                // TPCs (Fig. 13a).
                if let Some(be) = st.be_launch {
                    if be.mask.overlaps(TpcMask::first(self.ls_region)) {
                        st.preempt_be();
                    }
                }
            } else {
                self.ls_region = quantized;
            }
        }
        // Elastic BE growth (Fig. 13b): when the tide recedes, the running
        // persistent-thread BE kernel expands onto the freed TPCs and its
        // bimodal tensors switch mappings.
        if let Some(be) = st.be_launch {
            let desired_mask = if self.cfg.static_partition {
                TpcMask::range(self.num_tpcs / 2, self.num_tpcs - self.num_tpcs / 2)
            } else {
                TpcMask::first(self.num_tpcs).minus(TpcMask::first(self.ls_region))
            };
            // Only expansions happen in place; shrinks go through
            // preemption above.
            if desired_mask.0 & be.mask.0 == be.mask.0 && desired_mask != be.mask {
                let memory_bound =
                    st.scenario.be[be.task].profile.kernels[be.kernel_idx].memory_bound;
                let channels = if memory_bound && (ls_active || self.cfg.static_partition) {
                    self.be_channels
                } else {
                    self.all_channels
                };
                st.remask_be(desired_mask, channels);
            }
        }

        // ---- LS side -----------------------------------------------------
        if st.ls_launch.is_none() {
            if let Some((task, kidx)) = st.peek_ls() {
                let mask = TpcMask::first(self.ls_region.max(1));
                let memory_bound = st.scenario.ls[task].profile.kernels[kidx].memory_bound;
                // Colocation: movable LS tensors sit on the LS channels.
                // Keyed on *resident* BE work — a replica whose BE tasks
                // all migrated away is monopolized by LS (Fig. 14) even
                // though its scenario still lists them.
                let colocated = st.be_present();
                let channels = if memory_bound && (colocated || self.cfg.static_partition) {
                    self.ls_channels
                } else {
                    self.all_channels
                };
                st.launch_ls(mask, channels, 1.0);
            }
        }
        // ---- BE side -----------------------------------------------------
        if st.be_launch.is_none() {
            if let Some((task, kidx)) = st.peek_be() {
                let mask = if self.cfg.static_partition {
                    TpcMask::range(self.num_tpcs / 2, self.num_tpcs - self.num_tpcs / 2)
                } else {
                    TpcMask::first(self.num_tpcs).minus(TpcMask::first(self.ls_region))
                };
                if mask.is_empty() {
                    return;
                }
                let memory_bound = st.scenario.be[task].profile.kernels[kidx].memory_bound;
                // Fig. 14 mode: colocation while LS work exists.
                let channels = if memory_bound && (ls_active || self.cfg.static_partition) {
                    self.be_channels
                } else {
                    self.all_channels
                };
                st.launch_be(mask, channels, 1.0, self.cfg.poll_us);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::{run, Scenario, Task};
    use dnn::zoo::{build, ModelId};
    use dnn::CompileOptions;
    use gpu_spec::GpuModel;

    fn scenario(arrival_period_us: f64, horizon_us: f64) -> Scenario {
        let spec = GpuModel::RtxA2000.spec();
        let ls_model = dnn::compile(
            build(ModelId::MobileNetV3),
            &spec,
            CompileOptions::default(),
        );
        let be_model = dnn::compile(
            build(ModelId::DenseNet161),
            &spec,
            CompileOptions::default(),
        );
        let arrivals: Vec<f64> = (0..)
            .map(|i| i as f64 * arrival_period_us)
            .take_while(|&t| t < horizon_us)
            .collect();
        let ls = vec![Task::new(ls_model, &spec)];
        let be = vec![Task::new(be_model, &spec)];
        Scenario::new(spec, ls, be, 4, vec![arrivals], horizon_us)
    }

    #[test]
    fn serves_ls_requests_and_be_inferences() {
        let sc = scenario(5_000.0, 200_000.0);
        let mut policy = Sgdrc::new(&sc.spec, SgdrcConfig::default());
        let stats = run(&mut policy, &sc);
        assert!(
            stats.ls_completed[0].len() >= 30,
            "LS requests served: {}",
            stats.ls_completed[0].len()
        );
        assert!(stats.be_completed[0] >= 1, "BE made progress");
    }

    #[test]
    fn ls_latency_is_close_to_isolated_under_light_load() {
        let sc = scenario(20_000.0, 400_000.0);
        let isolated = sc.ls[0].profile.isolated_e2e_us;
        let mut policy = Sgdrc::new(&sc.spec, SgdrcConfig::default());
        let stats = run(&mut policy, &sc);
        let mut lat: Vec<f64> = stats.ls_completed[0]
            .iter()
            .map(|r| r.latency_us())
            .collect();
        lat.sort_by(f64::total_cmp);
        let p99 = lat[((lat.len() as f64 * 0.99) as usize).min(lat.len() - 1)];
        assert!(p99 < isolated * 3.0, "p99 {p99} vs isolated {isolated}");
    }

    #[test]
    fn dynamic_beats_static_on_be_throughput_in_light_load() {
        // Fig. 17 / §9.3: "Compared with SGDRC (Static), SGDRC achieves
        // higher BE job throughput … more evident in the light workload".
        let sc = scenario(25_000.0, 600_000.0);
        let mut dynamic = Sgdrc::new(&sc.spec, SgdrcConfig::default());
        let d = run(&mut dynamic, &sc);
        let mut stat = Sgdrc::new(
            &sc.spec,
            SgdrcConfig {
                static_partition: true,
                ..Default::default()
            },
        );
        let s = run(&mut stat, &sc);
        assert!(
            d.be_completed[0] > s.be_completed[0],
            "dynamic {} vs static {}",
            d.be_completed[0],
            s.be_completed[0]
        );
    }

    #[test]
    fn identical_runs_are_deterministic() {
        // The serving loop and engine share no hidden global state: two
        // invocations of the same scenario produce identical statistics
        // (including every completion timestamp), which is what makes
        // sweep results reproducible across parallel runs.
        let sc = scenario(5_000.0, 150_000.0);
        let mut a = Sgdrc::new(&sc.spec, SgdrcConfig::default());
        let first = run(&mut a, &sc);
        let mut b = Sgdrc::new(&sc.spec, SgdrcConfig::default());
        let second = run(&mut b, &sc);
        assert_eq!(first, second);
        assert!(first.engine_events > 0, "events were counted");
        assert!(
            first.horizon_us <= sc.horizon_us,
            "recorded horizon is the simulated time"
        );
    }

    #[test]
    fn be_preemptions_happen_under_load() {
        let sc = scenario(3_000.0, 200_000.0);
        let mut policy = Sgdrc::new(&sc.spec, SgdrcConfig::default());
        let stats = run(&mut policy, &sc);
        assert!(
            stats.be_preemptions > 0,
            "tidal masking must evict BE kernels"
        );
    }
}
