//! Offline profiling (paper §4 offline phase, §7.1, §7.2).
//!
//! Two decisions are made offline, per kernel, per GPU:
//!
//! * **`SM_LS`** — the minimum number of TPCs at which the kernel reaches
//!   (within a tolerance) its lowest latency, found by binary search
//!   exactly as §7.1 describes;
//! * **memory-boundedness** — "a kernel is considered memory-bound if its
//!   runtime degrades when L2 cachelines are intensively populated by a
//!   colocated kernel" (§7.2): measured by co-running a synthetic VRAM
//!   thrasher on disjoint TPCs and overlapping channels.

use dnn::kernel::{KernelDesc, KernelKind};
use dnn::perf;
use dnn::zoo::Model;
use exec_sim::{compute_rates, ChannelSet, RunningCtx, TpcMask};
use gpu_spec::GpuSpec;

/// Per-kernel offline profile.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Minimum TPCs achieving near-optimal latency (§7.1's `SM_LS`).
    pub min_tpcs: u32,
    /// Runtime at full resources, µs.
    pub isolated_us: f64,
    /// Degrades under L2 thrashing ⇒ memory-bound (§7.2).
    pub memory_bound: bool,
    /// DRAM bandwidth consumption at full resources, GB/s.
    pub bandwidth_gbps: f64,
}

/// Offline profile of a whole model.
#[derive(Debug, Clone)]
pub struct ModelProfile {
    pub kernels: Vec<KernelProfile>,
    /// Isolated end-to-end latency (sum of isolated kernel times), µs.
    pub isolated_e2e_us: f64,
}

impl ModelProfile {
    /// The largest per-kernel `SM_LS` of the model.
    pub fn max_min_tpcs(&self) -> u32 {
        self.kernels.iter().map(|k| k.min_tpcs).max().unwrap_or(1)
    }
}

/// Latency tolerance for the min-SM binary search: the smallest allocation
/// whose latency is indistinguishable from optimal within profiling noise
/// (real-GPU kernel timings vary by >10% run-to-run).
const MIN_SM_TOLERANCE: f64 = 1.15;

/// §7.1: binary search for the minimum TPC count with near-optimal latency.
pub fn min_tpcs_for(k: &KernelDesc, spec: &GpuSpec) -> u32 {
    let best = perf::isolated_runtime_us(k, spec);
    let target = best * MIN_SM_TOLERANCE;
    let mut lo = 1u32;
    let mut hi = spec.num_tpcs;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let t = perf::runtime_us(
            k,
            spec,
            perf::ResourceCtx {
                tpcs: mid as f64,
                bw_share: 1.0,
                intra_sm_factor: 1.0,
            },
        );
        if t <= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// The synthetic L2-thrashing probe used by the memory-bound test.
fn thrasher_kernel(spec: &GpuSpec) -> KernelDesc {
    KernelDesc {
        id: 0xDEAD,
        name: "profiler/thrasher".into(),
        kind: KernelKind::Elementwise,
        flops: 1e6,
        // Streams several L2 capacities per millisecond.
        bytes: spec.mem_bandwidth_gbps * 1e6,
        thread_blocks: spec.num_sms() * 4,
        persistent_threads: true,
        colored: false,
        extra_registers: 0,
        tensor_refs: vec![],
    }
}

/// §7.2's operational memory-bound test: co-run the kernel (on half the
/// TPCs, all channels) with a thrasher (other TPCs, all channels) and
/// compare against running alone with the same mask.
pub fn is_memory_bound_probe(k: &KernelDesc, spec: &GpuSpec) -> bool {
    let half = spec.num_tpcs / 2;
    let victim = RunningCtx::new(
        spec,
        k.clone(),
        TpcMask::first(half),
        ChannelSet::all(spec),
        1.0,
    );
    let thrash = RunningCtx::new(
        spec,
        thrasher_kernel(spec),
        TpcMask::range(half, spec.num_tpcs - half),
        ChannelSet::all(spec),
        1.0,
    );
    let alone = compute_rates(spec, std::slice::from_ref(&victim))[0].duration_us;
    let together = compute_rates(spec, &[victim, thrash])[0].duration_us;
    together > alone * 1.10
}

/// Profiles one kernel.
pub fn profile_kernel(k: &KernelDesc, spec: &GpuSpec) -> KernelProfile {
    let isolated = perf::isolated_runtime_us(k, spec);
    KernelProfile {
        min_tpcs: min_tpcs_for(k, spec),
        isolated_us: isolated,
        memory_bound: is_memory_bound_probe(k, spec),
        bandwidth_gbps: k.bytes / ((isolated - perf::LAUNCH_OVERHEAD_US).max(1e-3) * 1e-6) / 1e9,
    }
}

/// Profiles a whole (compiled) model.
pub fn profile_model(model: &Model, spec: &GpuSpec) -> ModelProfile {
    let kernels: Vec<KernelProfile> = model
        .kernels
        .iter()
        .map(|k| profile_kernel(k, spec))
        .collect();
    let isolated_e2e_us = kernels.iter().map(|k| k.isolated_us).sum();
    ModelProfile {
        kernels,
        isolated_e2e_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::zoo::{build, ModelId};
    use dnn::CompileOptions;
    use gpu_spec::GpuModel;

    #[test]
    fn min_tpcs_is_minimal_and_sufficient() {
        let spec = GpuModel::RtxA2000.spec();
        let m = dnn::compile(build(ModelId::ResNet34), &spec, CompileOptions::default());
        for k in m.kernels.iter().take(20) {
            let min = min_tpcs_for(k, &spec);
            let best = perf::isolated_runtime_us(k, &spec);
            let at_min = perf::runtime_us(
                k,
                &spec,
                perf::ResourceCtx {
                    tpcs: min as f64,
                    bw_share: 1.0,
                    intra_sm_factor: 1.0,
                },
            );
            assert!(at_min <= best * MIN_SM_TOLERANCE + 1e-9, "{}", k.name);
            if min > 1 {
                let below = perf::runtime_us(
                    k,
                    &spec,
                    perf::ResourceCtx {
                        tpcs: (min - 1) as f64,
                        bw_share: 1.0,
                        intra_sm_factor: 1.0,
                    },
                );
                assert!(below > best * MIN_SM_TOLERANCE, "{} not minimal", k.name);
            }
        }
    }

    #[test]
    fn most_ls_kernels_need_few_tpcs() {
        // The premise of tidal masking: small LS kernels leave SMs for BE.
        let spec = GpuModel::RtxA2000.spec();
        let m = dnn::compile(
            build(ModelId::MobileNetV3),
            &spec,
            CompileOptions::default(),
        );
        let p = profile_model(&m, &spec);
        let small = p
            .kernels
            .iter()
            .filter(|k| k.min_tpcs <= spec.num_tpcs / 2)
            .count();
        assert!(
            small * 2 > p.kernels.len(),
            "only {small}/{} kernels fit half the GPU",
            p.kernels.len()
        );
    }

    #[test]
    fn probe_agrees_with_roofline_mostly() {
        // The operational memory-bound test (§7.2) and the roofline
        // classification should agree on the vast majority of kernels.
        let spec = GpuModel::RtxA2000.spec();
        let m = dnn::compile(
            build(ModelId::DenseNet161),
            &spec,
            CompileOptions::default(),
        );
        let mut agree = 0;
        for k in &m.kernels {
            if is_memory_bound_probe(k, &spec) == k.is_memory_bound(&spec) {
                agree += 1;
            }
        }
        assert!(
            agree * 10 >= m.kernels.len() * 8,
            "probe vs roofline agreement {agree}/{}",
            m.kernels.len()
        );
    }

    #[test]
    fn profile_has_sane_bandwidths() {
        let spec = GpuModel::TeslaP40.spec();
        let m = dnn::compile(build(ModelId::Bert), &spec, CompileOptions::default());
        let p = profile_model(&m, &spec);
        for kp in &p.kernels {
            assert!(kp.bandwidth_gbps >= 0.0 && kp.bandwidth_gbps <= spec.mem_bandwidth_gbps * 1.2);
        }
        assert!(p.isolated_e2e_us > 0.0);
    }
}
