//! # sgdrc-core — the SGDRC control plane
//!
//! The paper's primary contribution (§4, §7): offline profiling, the
//! serving substrate, and the SGDRC scheduling policy.
//!
//! * [`profiler`] — per-kernel `SM_LS` binary search (§7.1) and the
//!   operational memory-bound probe (§7.2);
//! * [`serving`] — the online architecture of Fig. 6: LS request queues
//!   with per-model instances, closed-loop BE tasks, round-robin kernel
//!   queues, and the policy-driven serving loop;
//! * [`sgdrc`] — tidal SM masking with eviction-flag preemption plus the
//!   bimodal-tensor channel state machine; also provides the
//!   SGDRC (Static) baseline variant.

pub mod profiler;
pub mod serving;
pub mod sgdrc;

pub use profiler::{
    is_memory_bound_probe, min_tpcs_for, profile_kernel, profile_model, KernelProfile, ModelProfile,
};
pub use serving::{
    run, run_configured_in, run_in_context, run_with_mode, CompletedRequest, Policy, RunStats,
    Scenario, ServingState, SimContext, Task,
};
pub use sgdrc::{Sgdrc, SgdrcConfig};
