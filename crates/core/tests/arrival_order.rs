//! Property tests for the merged arrival stream: it must yield exactly
//! the (task, time) sequence the seed per-task cursor scan produced,
//! including tie-breaking, for arbitrary sorted traces.

use proptest::prelude::*;
use sgdrc_core::serving::{merge_arrivals, ArrivalTrace};

/// The seed algorithm, verbatim: repeatedly scan every per-task cursor
/// and consume the earliest head (strict `<`, so the lowest task index
/// wins time ties).
fn seed_scan(per_task: &[Vec<f64>]) -> Vec<(usize, f64)> {
    let mut cursors = vec![0usize; per_task.len()];
    let mut out = Vec::new();
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (t, &c) in cursors.iter().enumerate() {
            if let Some(&at) = per_task[t].get(c) {
                if best.is_none_or(|(_, b)| at < b) {
                    best = Some((t, at));
                }
            }
        }
        match best {
            Some((t, at)) => {
                cursors[t] += 1;
                out.push((t, at));
            }
            None => break,
        }
    }
    out
}

proptest! {
    /// Random traces with deliberately collision-prone timestamps (small
    /// integer grid, so cross-task and within-task ties are common).
    #[test]
    fn merged_stream_matches_seed_scan(
        raw in prop::collection::vec(prop::collection::vec(0u32..64, 0..48), 0..6),
    ) {
        let per_task: Vec<Vec<f64>> = raw
            .into_iter()
            .map(|mut v| {
                v.sort_unstable();
                v.into_iter().map(|x| x as f64 * 0.5).collect()
            })
            .collect();
        let merged = merge_arrivals(&per_task);
        let seed = seed_scan(&per_task);
        prop_assert_eq!(merged.len(), seed.len());
        for (m, s) in merged.iter().zip(&seed) {
            prop_assert_eq!(m.task as usize, s.0);
            prop_assert_eq!(m.at_us, s.1);
        }
        // The lazily built trace agrees with the free function.
        let trace = ArrivalTrace::new(per_task);
        prop_assert_eq!(trace.merged().len(), seed.len());
        for (m, s) in trace.merged().iter().zip(&seed) {
            prop_assert_eq!((m.task as usize, m.at_us), *s);
        }
    }

    /// The merged stream is globally time-sorted with ties ordered by
    /// task index — the invariant the O(1) serving cursor relies on.
    #[test]
    fn merged_stream_is_sorted(
        raw in prop::collection::vec(prop::collection::vec(0u32..32, 0..32), 1..5),
    ) {
        let per_task: Vec<Vec<f64>> = raw
            .into_iter()
            .map(|mut v| {
                v.sort_unstable();
                v.into_iter().map(f64::from).collect()
            })
            .collect();
        let merged = merge_arrivals(&per_task);
        for w in merged.windows(2) {
            prop_assert!(
                w[0].at_us < w[1].at_us
                    || (w[0].at_us == w[1].at_us && w[0].task <= w[1].task),
                "out of order: {:?} then {:?}", w[0], w[1]
            );
        }
    }
}
