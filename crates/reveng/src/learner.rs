//! §5.3 — learning the VRAM channel hash mapping from noisy samples.
//!
//! Marking the whole VRAM space is infeasible (the paper estimates over a
//! year for 24 GiB), so SGDRC collects ~15K `(physical address, channel)`
//! samples — about 1–5% of which are mislabelled by cache noise — trains a
//! DNN to approximate the hash function, and emits a full lookup table with
//! >99.9% accuracy on unseen addresses.
//!
//! Two learners are provided:
//!
//! * [`MlpHashLearner`] — a small MLP over *generic periodic features*
//!   (one-hot residues of the partition index modulo a fixed 2^a·3^b grid,
//!   plus raw address bits). Hardware interleavings are built from
//!   power-of-two folds and small-modulus distributors (paper refs
//!   [2, 13, 29]), so this encoding is the DNN analogue of a Fourier
//!   positional encoding — it assumes periodicity, not any specific hash
//!   structure.
//! * [`PeriodLearner`] — an ablation: detect the layout period by label
//!   consistency and majority-vote per residue. Simpler, but *does* assume
//!   strict periodicity.
//!
//! Neither learner ever consults the ground-truth oracle; accuracy
//! evaluation against the oracle happens only in tests and benches.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One labelled observation: a physical partition index and the channel
/// class the marking pipeline assigned to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    pub partition: u64,
    pub label: u16,
}

/// Generic periodic feature map: one-hot residues for every modulus in a
/// fixed 2^a·3^b grid, plus the raw partition-index bits.
#[derive(Debug, Clone)]
pub struct FeatureMap {
    moduli: Vec<u64>,
    bits: u32,
    dim: usize,
}

impl FeatureMap {
    /// The default grid: all modulus values 2^a·3^b ≤ `max_modulus` with
    /// a ≥ 0, b ∈ {0, 1, 2}, in increasing order.
    pub fn new(max_modulus: u64, bits: u32) -> Self {
        let mut moduli = Vec::new();
        for b in 0..3u32 {
            let three = 3u64.pow(b);
            let mut m = three;
            while m <= max_modulus {
                if m >= 2 {
                    moduli.push(m);
                }
                m *= 2;
            }
        }
        moduli.sort_unstable();
        moduli.dedup();
        let dim = moduli.iter().map(|&m| m as usize).sum::<usize>() + bits as usize;
        Self { moduli, bits, dim }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Indices of the active (non-zero) features for a partition index;
    /// residue one-hots are exactly one per modulus, bit features are the
    /// set bits. All active features have value 1.
    pub fn active_features(&self, p: u64, out: &mut Vec<usize>) {
        out.clear();
        let mut base = 0usize;
        for &m in &self.moduli {
            out.push(base + (p % m) as usize);
            base += m as usize;
        }
        for b in 0..self.bits {
            if (p >> b) & 1 == 1 {
                out.push(base + b as usize);
            }
        }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    pub hidden: usize,
    pub epochs: usize,
    pub batch: usize,
    pub lr: f32,
    pub seed: u64,
    pub max_modulus: u64,
    /// Per-epoch multiplicative weight decay (0 disables).
    pub weight_decay: f32,
    /// Number of raw partition-index bit features. Bit features let the
    /// model express XOR-fold structure but also invite memorization of
    /// noisy samples; the default keeps them off and relies on the
    /// periodic residue grid.
    pub bit_features: u32,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: 96,
            epochs: 80,
            batch: 64,
            lr: 0.08,
            seed: 7,
            max_modulus: 576,
            weight_decay: 0.05,
            bit_features: 0,
        }
    }
}

/// A trained two-layer MLP (ReLU hidden layer, softmax output, linear skip
/// connection) over the periodic feature map. The skip path lets the model
/// express residue tables exactly; the hidden path captures interactions
/// between features.
#[derive(Debug, Clone)]
pub struct MlpHashLearner {
    feat: FeatureMap,
    hidden: usize,
    classes: usize,
    /// `w1[f * hidden + h]` — input→hidden weights (row per feature).
    w1: Vec<f32>,
    b1: Vec<f32>,
    /// `w2[h * classes + c]` — hidden→output weights.
    w2: Vec<f32>,
    b2: Vec<f32>,
    /// `skip[f * classes + c]` — direct input→output weights.
    skip: Vec<f32>,
}

impl MlpHashLearner {
    /// Trains on the samples with plain mini-batch SGD + momentum.
    pub fn train(samples: &[Sample], cfg: &MlpConfig) -> Self {
        assert!(!samples.is_empty());
        let classes = samples.iter().map(|s| s.label).max().unwrap() as usize + 1;
        let feat = FeatureMap::new(cfg.max_modulus, cfg.bit_features);
        let dim = feat.dim();
        let hidden = cfg.hidden;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let scale1 = (2.0 / dim as f32).sqrt();
        let scale2 = (2.0 / hidden as f32).sqrt();
        let mut model = Self {
            feat,
            hidden,
            classes,
            w1: (0..dim * hidden)
                .map(|_| rng.gen_range(-scale1..scale1))
                .collect(),
            b1: vec![0.0; hidden],
            w2: (0..hidden * classes)
                .map(|_| rng.gen_range(-scale2..scale2))
                .collect(),
            b2: vec![0.0; classes],
            skip: vec![0.0; dim * classes],
        };
        let mut vel_w1 = vec![0.0f32; model.w1.len()];
        let mut vel_b1 = vec![0.0f32; hidden];
        let mut vel_w2 = vec![0.0f32; model.w2.len()];
        let mut vel_b2 = vec![0.0f32; classes];
        let momentum = 0.9f32;

        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut active = Vec::with_capacity(64);
        let mut h_pre = vec![0.0f32; hidden];
        let mut h_act = vec![0.0f32; hidden];
        let mut logits = vec![0.0f32; classes];
        let mut dlogits = vec![0.0f32; classes];
        let mut dhidden = vec![0.0f32; hidden];

        for epoch in 0..cfg.epochs {
            // Epoch-level weight decay: shrinking all weights slightly each
            // epoch suppresses rarely-reinforced noise fits while the
            // per-residue majority signal is re-learned immediately.
            if cfg.weight_decay > 0.0 {
                let k = 1.0 - cfg.weight_decay;
                for w in model
                    .w1
                    .iter_mut()
                    .chain(model.w2.iter_mut())
                    .chain(model.skip.iter_mut())
                {
                    *w *= k;
                }
            }
            order.shuffle(&mut rng);
            // Step-decay schedule: halve the rate every quarter of training
            // so the model settles onto the per-residue majority labels.
            let lr_epoch = cfg.lr * 0.5f32.powi((4 * epoch / cfg.epochs.max(1)) as i32);
            for chunk in order.chunks(cfg.batch) {
                // Accumulate gradients over the mini-batch via immediate
                // momentum updates scaled by 1/batch (equivalent for SGD).
                let lr = lr_epoch / chunk.len() as f32;
                for &idx in chunk {
                    let s = samples[idx];
                    model.feat.active_features(s.partition, &mut active);
                    // Forward.
                    h_pre.copy_from_slice(&model.b1);
                    for &f in &active {
                        let row = &model.w1[f * hidden..(f + 1) * hidden];
                        for (h, &w) in h_pre.iter_mut().zip(row) {
                            *h += w;
                        }
                    }
                    for (a, &p) in h_act.iter_mut().zip(&h_pre) {
                        *a = p.max(0.0);
                    }
                    logits.copy_from_slice(&model.b2);
                    for (h, &a) in h_act.iter().enumerate() {
                        if a > 0.0 {
                            let row = &model.w2[h * classes..(h + 1) * classes];
                            for (l, &w) in logits.iter_mut().zip(row) {
                                *l += a * w;
                            }
                        }
                    }
                    for &f in &active {
                        let row = &model.skip[f * classes..(f + 1) * classes];
                        for (l, &w) in logits.iter_mut().zip(row) {
                            *l += w;
                        }
                    }
                    // Softmax + CE gradient.
                    let max = logits.iter().cloned().fold(f32::MIN, f32::max);
                    let mut sum = 0.0;
                    for (d, &l) in dlogits.iter_mut().zip(&logits) {
                        *d = (l - max).exp();
                        sum += *d;
                    }
                    for d in dlogits.iter_mut() {
                        *d /= sum;
                    }
                    dlogits[s.label as usize] -= 1.0;
                    // Backward: output layer.
                    for h in 0..hidden {
                        let a = h_act[h];
                        let row = &model.w2[h * classes..(h + 1) * classes];
                        let mut g = 0.0;
                        for (w, &d) in row.iter().zip(&dlogits) {
                            g += w * d;
                        }
                        dhidden[h] = if h_pre[h] > 0.0 { g } else { 0.0 };
                        if a > 0.0 {
                            let vrow = &mut vel_w2[h * classes..(h + 1) * classes];
                            let wrow = &mut model.w2[h * classes..(h + 1) * classes];
                            for ((v, w), &d) in vrow.iter_mut().zip(wrow).zip(&dlogits) {
                                *v = momentum * *v - lr * a * d;
                                *w += *v;
                            }
                        }
                    }
                    for ((v, b), &d) in vel_b2.iter_mut().zip(&mut model.b2).zip(&dlogits) {
                        *v = momentum * *v - lr * d;
                        *b += *v;
                    }
                    // Backward: skip path (sparse inputs, plain SGD).
                    for &f in &active {
                        let row = &mut model.skip[f * classes..(f + 1) * classes];
                        for (w, &d) in row.iter_mut().zip(&dlogits) {
                            *w -= lr * d;
                        }
                    }
                    // Backward: hidden layer (sparse inputs).
                    for &f in &active {
                        let vrow = &mut vel_w1[f * hidden..(f + 1) * hidden];
                        let wrow = &mut model.w1[f * hidden..(f + 1) * hidden];
                        for ((v, w), &d) in vrow.iter_mut().zip(wrow).zip(&dhidden) {
                            *v = momentum * *v - lr * d;
                            *w += *v;
                        }
                    }
                    for ((v, b), &d) in vel_b1.iter_mut().zip(&mut model.b1).zip(&dhidden) {
                        *v = momentum * *v - lr * d;
                        *b += *v;
                    }
                }
            }
        }
        model
    }

    /// Predicted channel class for a partition index.
    pub fn predict(&self, partition: u64) -> u16 {
        let mut active = Vec::with_capacity(64);
        self.feat.active_features(partition, &mut active);
        let mut h_pre = self.b1.clone();
        for &f in &active {
            let row = &self.w1[f * self.hidden..(f + 1) * self.hidden];
            for (h, &w) in h_pre.iter_mut().zip(row) {
                *h += w;
            }
        }
        let mut logits = self.b2.clone();
        for (h, p) in h_pre.iter().enumerate() {
            let a = p.max(0.0);
            if a > 0.0 {
                let row = &self.w2[h * self.classes..(h + 1) * self.classes];
                for (l, &w) in logits.iter_mut().zip(row) {
                    *l += a * w;
                }
            }
        }
        for &f in &active {
            let row = &self.skip[f * self.classes..(f + 1) * self.classes];
            for (l, &w) in logits.iter_mut().zip(row) {
                *l += w;
            }
        }
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i as u16)
            .unwrap()
    }

    /// Fraction of samples predicted correctly.
    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        let ok = samples
            .iter()
            .filter(|s| self.predict(s.partition) == s.label)
            .count();
        ok as f64 / samples.len().max(1) as f64
    }

    /// The §5.3 lookup table: predicted channel of every partition in
    /// `0..n_partitions` (1 KiB granularity across the VRAM space).
    pub fn lookup_table(&self, n_partitions: u64) -> Vec<u16> {
        (0..n_partitions).map(|p| self.predict(p)).collect()
    }

    pub fn num_classes(&self) -> usize {
        self.classes
    }
}

/// Ablation learner: detect the layout period, majority-vote per residue.
#[derive(Debug, Clone)]
pub struct PeriodLearner {
    pub period: u64,
    table: Vec<u16>,
    pub consistency: f64,
}

impl PeriodLearner {
    /// Searches periods `2..=max_period` and keeps the smallest whose
    /// majority-vote consistency is within `tolerance` of the best.
    pub fn train(samples: &[Sample], max_period: u64, tolerance: f64) -> Self {
        assert!(!samples.is_empty());
        let mut best: (u64, f64) = (1, 0.0);
        let mut scores: Vec<(u64, f64)> = Vec::new();
        for period in 2..=max_period {
            let mut votes: HashMap<u64, HashMap<u16, u32>> = HashMap::new();
            for s in samples {
                *votes
                    .entry(s.partition % period)
                    .or_default()
                    .entry(s.label)
                    .or_insert(0) += 1;
            }
            let agree: u64 = votes
                .values()
                .map(|v| *v.values().max().unwrap() as u64)
                .sum();
            let score = agree as f64 / samples.len() as f64;
            scores.push((period, score));
            if score > best.1 {
                best = (period, score);
            }
        }
        let period = scores
            .iter()
            .filter(|&&(_, s)| s >= best.1 - tolerance)
            .map(|&(p, _)| p)
            .min()
            .unwrap_or(best.0);
        // Final table by majority vote.
        let mut votes: Vec<HashMap<u16, u32>> = vec![HashMap::new(); period as usize];
        for s in samples {
            *votes[(s.partition % period) as usize]
                .entry(s.label)
                .or_insert(0) += 1;
        }
        let table: Vec<u16> = votes
            .iter()
            .map(|v| {
                v.iter()
                    .max_by_key(|(_, &c)| c)
                    .map(|(&l, _)| l)
                    .unwrap_or(0)
            })
            .collect();
        let consistency = scores
            .iter()
            .find(|&&(p, _)| p == period)
            .map(|&(_, s)| s)
            .unwrap_or(0.0);
        Self {
            period,
            table,
            consistency,
        }
    }

    pub fn predict(&self, partition: u64) -> u16 {
        self.table[(partition % self.period) as usize]
    }

    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        let ok = samples
            .iter()
            .filter(|s| self.predict(s.partition) == s.label)
            .count();
        ok as f64 / samples.len().max(1) as f64
    }
}

/// Draws `n` oracle-labelled samples over `span_partitions` and flips
/// `noise` of the labels uniformly — the controlled-noise sample sets used
/// by the §5.3 experiments (the paper's real samples carry the same ~1–5%
/// mislabel rate from cache noise).
pub fn synthetic_samples(
    oracle: &dyn gpu_spec::ChannelHash,
    span_partitions: u64,
    n: usize,
    noise: f64,
    seed: u64,
) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let channels = oracle.num_channels();
    (0..n)
        .map(|_| {
            let p = rng.gen_range(0..span_partitions);
            let mut label = oracle.channel_of_partition(p);
            if rng.gen_bool(noise) {
                label = (label + rng.gen_range(1..channels)) % channels;
            }
            Sample {
                partition: p,
                label,
            }
        })
        .collect()
}

/// Clean oracle-labelled evaluation set over unseen partitions.
pub fn oracle_test_set(
    oracle: &dyn gpu_spec::ChannelHash,
    span_partitions: u64,
    n: usize,
    seed: u64,
) -> Vec<Sample> {
    synthetic_samples(oracle, span_partitions, n, 0.0, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::GpuModel;

    /// Debug builds train ~30× slower; cut epochs there (sample counts
    /// must stay at paper scale so every residue class is covered) and
    /// keep the full runs for release (`cargo test --release`, the benches
    /// and EXPERIMENTS.md).
    fn scaled(n: usize) -> usize {
        n
    }

    fn test_config() -> MlpConfig {
        MlpConfig {
            epochs: if cfg!(debug_assertions) { 16 } else { 80 },
            ..Default::default()
        }
    }

    #[test]
    fn feature_map_has_one_hot_residues() {
        let f = FeatureMap::new(48, 8);
        let mut a = Vec::new();
        f.active_features(5, &mut a);
        // One active residue per modulus; bit features for 5 = 0b101.
        let residue_count = a.iter().filter(|&&i| i < f.dim() - 8).count();
        assert_eq!(residue_count, f.moduli.len());
        assert_eq!(a.len(), residue_count + 2);
    }

    #[test]
    fn feature_grid_contains_crt_moduli() {
        // 16·9 = 144 (A2000 period) and 64·9 = 576 (P40 period) must be
        // representable: the grid has 2^a·3^b members including 144, 576.
        let f = FeatureMap::new(576, 25);
        assert!(f.moduli.contains(&144));
        assert!(f.moduli.contains(&576));
        assert!(f.moduli.contains(&9));
        assert!(f.moduli.contains(&64));
    }

    #[test]
    fn mlp_learns_a2000_hash_from_noisy_samples() {
        // The §5.3 headline: 15K samples, ~5% noise, >99.9% test accuracy.
        let oracle = GpuModel::RtxA2000.channel_hash();
        let span = 96 * 1024; // 96 MiB worth of partitions
        let train = synthetic_samples(oracle.as_ref(), span, scaled(15_000), 0.05, 1);
        let model = MlpHashLearner::train(&train, &test_config());
        let test = oracle_test_set(oracle.as_ref(), span, scaled(4_000), 2);
        let acc = model.accuracy(&test);
        let floor = if cfg!(debug_assertions) { 0.98 } else { 0.999 };
        assert!(acc > floor, "test accuracy {acc}");
    }

    #[test]
    fn mlp_learns_p40_hash_from_noisy_samples() {
        let oracle = GpuModel::TeslaP40.channel_hash();
        let span = 96 * 1024;
        let train = synthetic_samples(oracle.as_ref(), span, scaled(15_000), 0.01, 3);
        let model = MlpHashLearner::train(&train, &test_config());
        let test = oracle_test_set(oracle.as_ref(), span, scaled(4_000), 4);
        let acc = model.accuracy(&test);
        let floor = if cfg!(debug_assertions) { 0.98 } else { 0.999 };
        assert!(acc > floor, "test accuracy {acc}");
    }

    #[test]
    fn period_learner_finds_layout_period() {
        let oracle = GpuModel::RtxA2000.channel_hash();
        let train = synthetic_samples(oracle.as_ref(), 1 << 20, scaled(15_000), 0.05, 5);
        let model = PeriodLearner::train(&train, 256, 0.002);
        assert_eq!(model.period, 144, "A2000 layout period = 12 windows × 12");
        let test = oracle_test_set(oracle.as_ref(), 1 << 20, 4_000, 6);
        assert!(model.accuracy(&test) > 0.999);
    }

    #[test]
    fn lookup_table_matches_predictions() {
        let oracle = GpuModel::RtxA2000.channel_hash();
        let train = synthetic_samples(oracle.as_ref(), 1 << 16, scaled(8_000), 0.02, 7);
        let model = MlpHashLearner::train(
            &train,
            &MlpConfig {
                epochs: 15,
                ..Default::default()
            },
        );
        let lut = model.lookup_table(512);
        for p in 0..512u64 {
            assert_eq!(lut[p as usize], model.predict(p));
        }
    }

    #[test]
    fn noise_free_training_is_also_fine() {
        let oracle = GpuModel::RtxA2000.channel_hash();
        let train = synthetic_samples(oracle.as_ref(), 1 << 18, scaled(10_000), 0.0, 8);
        let model = MlpHashLearner::train(&train, &test_config());
        let test = oracle_test_set(oracle.as_ref(), 1 << 18, scaled(2_000), 9);
        let floor = if cfg!(debug_assertions) { 0.98 } else { 0.999 };
        assert!(model.accuracy(&test) > floor);
    }
}
