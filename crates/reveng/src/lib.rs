//! # reveng — VRAM channel reverse engineering (paper §5)
//!
//! Recovers the black-box VRAM channel hash mapping of a (simulated)
//! NVIDIA GPU using only load latencies:
//!
//! * [`probe`] — Algo 1 (DRAM bank-conflict pairs) and Algo 2 (L2
//!   cacheline-conflict binary search);
//! * [`marking`] — Algo 3: channel-class discovery and region marking with
//!   noise-tolerant conflict pools (Fig. 11);
//! * `permutation` — §5.2 structure analysis: partition granularity,
//!   channel groups, m-permutation patterns (Fig. 8/19) and their
//!   uniformity histogram (Fig. 9);
//! * `learner` — §5.3: the DNN that learns the hash mapping from 15K noisy
//!   samples and emits the full lookup table (>99.9% accuracy);
//! * `fgpu` — the pure-XOR Gaussian-elimination attack FGPU uses, which
//!   succeeds on the GTX 1080, fails on non-power-of-2 channel GPUs and is
//!   poisoned by a single false-positive sample (§3.2).

pub mod fgpu;
pub mod learner;
pub mod marking;
pub mod permutation;
pub mod probe;

pub use fgpu::{solve_xor_hash, FgpuOutcome, XorHashModel};
pub use learner::{
    oracle_test_set, synthetic_samples, MlpConfig, MlpHashLearner, PeriodLearner, Sample,
};
pub use marking::{align_classes, ChannelMarker, ClassId, MarkError, MarkerConfig};
pub use permutation::{analyze, render_fig8, PermutationReport};
pub use probe::{
    find_cache_conflict_addrs, find_dram_conflict_addrs, is_cacheline_evicted,
    is_cacheline_evicted_voted, is_dram_bank_conflicted,
};
