//! §5.2 structure analysis: channel groups, m-permutations and uniformity.
//!
//! Takes a physically contiguous sequence of `(partition, channel-class)`
//! labels (from [`crate::marking`], or from a learned lookup table) and
//! recovers the structural findings of the paper:
//!
//! * the **block size** `g`: the largest aligned span whose partitions map
//!   to pairwise distinct channels of one recurring channel *set* — Tab. 4's
//!   "# contiguous VRAM channels" and the maximum coloring granularity;
//! * the **channel groups** (P40: A–D, E–H, I–L; A2000: A–B, C–D, E–F);
//! * the **window size** and the per-group **m-permutation patterns** of
//!   Fig. 8 / Fig. 19 (24 patterns on the P40, 12 on the A2000);
//! * the **pattern frequency histogram** of Fig. 9 (uniformly distributed).

use gpu_spec::PhysAddr;
use std::collections::{BTreeMap, BTreeSet};

/// A labelled, physically contiguous partition sequence.
pub type Labels = [(PhysAddr, u16)];

/// Structural report of a marked region (the Fig. 8/9 payload).
#[derive(Debug, Clone)]
pub struct PermutationReport {
    /// Number of distinct channel classes observed.
    pub num_channels: usize,
    /// Block size in partitions (= max coloring granularity in KiB).
    pub block_size: u64,
    /// Channel groups: disjoint sets of classes covering all channels.
    pub groups: Vec<Vec<u16>>,
    /// Window size in partitions.
    pub window: u64,
    /// Distinct per-group patterns (the paper's m-permutations), per group.
    pub patterns_per_group: Vec<usize>,
    /// Window-pattern histogram: signature → occurrence count (Fig. 9).
    pub histogram: BTreeMap<Vec<u16>, u64>,
}

impl PermutationReport {
    /// Max/min occurrence ratio over the histogram — 1.0 means perfectly
    /// uniform pattern distribution (Fig. 9's finding).
    pub fn uniformity_ratio(&self) -> f64 {
        let max = self.histogram.values().max().copied().unwrap_or(0) as f64;
        let min = self.histogram.values().min().copied().unwrap_or(0) as f64;
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

fn classes_of(labels: &Labels) -> BTreeSet<u16> {
    labels.iter().map(|&(_, c)| c).collect()
}

/// Detects the block size: the largest `g` in {8,4,2,1} such that every
/// `g`-aligned block has `g` pairwise distinct classes and the observed
/// block channel-sets are pairwise disjoint (each class belongs to exactly
/// one recurring set).
pub fn detect_block_size(labels: &Labels) -> u64 {
    'outer: for &g in &[8u64, 4, 2] {
        let mut sets: Vec<BTreeSet<u16>> = Vec::new();
        let mut any_block = false;
        for chunk in aligned_blocks(labels, g) {
            any_block = true;
            let set: BTreeSet<u16> = chunk.iter().map(|&(_, c)| c).collect();
            if set.len() != g as usize {
                continue 'outer; // repeated class within a block
            }
            if !sets.contains(&set) {
                sets.push(set);
            }
        }
        if !any_block {
            continue;
        }
        // Sets must be pairwise disjoint.
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                if sets[i].intersection(&sets[j]).next().is_some() {
                    continue 'outer;
                }
            }
        }
        return g;
    }
    1
}

/// Iterator over `g`-aligned full blocks inside the labelled region
/// (alignment is with respect to the *absolute* physical partition index).
fn aligned_blocks(labels: &Labels, g: u64) -> impl Iterator<Item = &[(PhysAddr, u16)]> {
    let start_part = labels.first().map(|&(pa, _)| pa.partition()).unwrap_or(0);
    let skip = ((g - start_part % g) % g) as usize;
    labels[skip.min(labels.len())..].chunks_exact(g as usize)
}

/// Recovers the channel groups from the block channel-sets.
pub fn detect_groups(labels: &Labels, block_size: u64) -> Vec<Vec<u16>> {
    let mut groups: Vec<BTreeSet<u16>> = Vec::new();
    for chunk in aligned_blocks(labels, block_size) {
        let set: BTreeSet<u16> = chunk.iter().map(|&(_, c)| c).collect();
        if !groups.contains(&set) {
            groups.push(set);
        }
    }
    let mut out: Vec<Vec<u16>> = groups
        .into_iter()
        .map(|s| s.into_iter().collect())
        .collect();
    out.sort();
    out
}

/// Detects the window size: the smallest multiple of
/// `block_size × num_groups` (tried up to ×8) in which every aligned window
/// contains each group's blocks equally often.
pub fn detect_window(labels: &Labels, block_size: u64, groups: &[Vec<u16>]) -> u64 {
    let base = block_size * groups.len() as u64;
    'cand: for mult in 1..=8u64 {
        let w = base * mult;
        let blocks_per_window = (w / block_size) as usize;
        let expected = blocks_per_window / groups.len();
        let mut any = false;
        for win in aligned_windows(labels, w) {
            any = true;
            let mut counts = vec![0usize; groups.len()];
            for block in win.chunks_exact(block_size as usize) {
                let cls = block[0].1;
                let Some(gi) = groups.iter().position(|grp| grp.contains(&cls)) else {
                    continue 'cand;
                };
                counts[gi] += 1;
            }
            if counts.iter().any(|&c| c != expected) {
                continue 'cand;
            }
        }
        if any {
            return w;
        }
    }
    base
}

fn aligned_windows(labels: &Labels, w: u64) -> impl Iterator<Item = &[(PhysAddr, u16)]> {
    let start_part = labels.first().map(|&(pa, _)| pa.partition()).unwrap_or(0);
    let skip = ((w - start_part % w) % w) as usize;
    labels[skip.min(labels.len())..].chunks_exact(w as usize)
}

/// Full structural analysis of a labelled region.
pub fn analyze(labels: &Labels) -> PermutationReport {
    let num_channels = classes_of(labels).len();
    let block_size = detect_block_size(labels);
    let groups = detect_groups(labels, block_size);
    let window = detect_window(labels, block_size, &groups);

    let mut histogram: BTreeMap<Vec<u16>, u64> = BTreeMap::new();
    let mut per_group: Vec<BTreeSet<Vec<(u64, u16)>>> = vec![BTreeSet::new(); groups.len()];
    for win in aligned_windows(labels, window) {
        let sig: Vec<u16> = win.iter().map(|&(_, c)| c).collect();
        *histogram.entry(sig).or_insert(0) += 1;
        for (gi, grp) in groups.iter().enumerate() {
            let gsig: Vec<(u64, u16)> = win
                .iter()
                .enumerate()
                .filter(|(_, &(_, c))| grp.contains(&c))
                .map(|(slot, &(_, c))| (slot as u64, c))
                .collect();
            per_group[gi].insert(gsig);
        }
    }
    PermutationReport {
        num_channels,
        block_size,
        groups,
        window,
        patterns_per_group: per_group.iter().map(BTreeSet::len).collect(),
        histogram,
    }
}

/// Renders a Fig. 8-style ASCII table: one row per distinct window pattern,
/// with the channels of `group_index` lettered and other channels shown as
/// `?`.
pub fn render_fig8(report: &PermutationReport, group_index: usize) -> String {
    let group = &report.groups[group_index];
    let letter = |c: u16| -> char {
        group
            .iter()
            .position(|&x| x == c)
            .map(|i| (b'A' + (group_index * group.len() + i) as u8) as char)
            .unwrap_or('?')
    };
    let mut rows: BTreeSet<Vec<u16>> = BTreeSet::new();
    for sig in report.histogram.keys() {
        rows.insert(sig.clone());
    }
    let mut out = String::new();
    let w = report.window as usize;
    out.push_str("      ");
    for slot in 0..w {
        out.push_str(&format!("{slot:>2} "));
    }
    out.push('\n');
    // Deduplicate rows by their group signature (Fig. 8 shows per-group
    // placements, several full layouts can share one).
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for sig in rows {
        let rendered: String = sig.iter().map(|&c| format!(" {} ", letter(c))).collect();
        if seen.insert(rendered.clone()) {
            out.push_str(&format!("{:>4}: {}\n", seen.len() - 1, rendered));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::{GpuModel, PARTITION_BYTES};

    /// Oracle-labelled contiguous region (analysis is label-agnostic, so
    /// testing against the oracle is legitimate here; the end-to-end probe
    /// path is covered by the integration tests).
    fn oracle_labels(model: GpuModel, partitions: u64) -> Vec<(PhysAddr, u16)> {
        let h = model.channel_hash();
        (0..partitions)
            .map(|p| (PhysAddr(p * PARTITION_BYTES), h.channel_of_partition(p)))
            .collect()
    }

    #[test]
    fn a2000_structure_recovered() {
        let labels = oracle_labels(GpuModel::RtxA2000, 12 * 12 * 16);
        let r = analyze(&labels);
        assert_eq!(r.num_channels, 6);
        assert_eq!(r.block_size, 2, "2 KiB blocks (Tab. 4)");
        assert_eq!(r.groups.len(), 3, "three channel groups");
        assert_eq!(r.window, 12);
        for &p in &r.patterns_per_group {
            assert_eq!(p, 12, "12-permutations (Fig. 8b)");
        }
    }

    #[test]
    fn p40_structure_recovered() {
        let labels = oracle_labels(GpuModel::TeslaP40, 24 * 24 * 16);
        let r = analyze(&labels);
        assert_eq!(r.num_channels, 12);
        assert_eq!(r.block_size, 4, "4 KiB blocks (Tab. 4)");
        assert_eq!(r.groups.len(), 3);
        assert_eq!(r.window, 24);
        for &p in &r.patterns_per_group {
            assert_eq!(p, 24, "24-permutations (Fig. 8a)");
        }
    }

    #[test]
    fn patterns_uniformly_distributed() {
        // Fig. 9: every pattern appears equally often.
        for model in [GpuModel::TeslaP40, GpuModel::RtxA2000] {
            let labels = oracle_labels(model, 24 * 24 * 32);
            let r = analyze(&labels);
            assert!(
                r.uniformity_ratio() <= 1.5,
                "{model:?}: ratio {}",
                r.uniformity_ratio()
            );
        }
    }

    #[test]
    fn gtx1080_blocks_of_four() {
        let labels = oracle_labels(GpuModel::Gtx1080, 4096);
        let r = analyze(&labels);
        assert_eq!(r.num_channels, 8);
        assert_eq!(r.block_size, 4, "Tab. 4: 4 contiguous channels");
        assert_eq!(r.groups.len(), 2);
    }

    #[test]
    fn analysis_tolerates_unaligned_start() {
        let h = GpuModel::RtxA2000.channel_hash();
        let labels: Vec<(PhysAddr, u16)> = (5..5 + 12 * 12 * 8)
            .map(|p| (PhysAddr(p * PARTITION_BYTES), h.channel_of_partition(p)))
            .collect();
        let r = analyze(&labels);
        assert_eq!(r.block_size, 2);
        assert_eq!(r.window, 12);
    }

    #[test]
    fn fig8_rendering_mentions_group_letters() {
        let labels = oracle_labels(GpuModel::RtxA2000, 12 * 12 * 4);
        let r = analyze(&labels);
        let fig = render_fig8(&r, 0);
        assert!(fig.contains('A') && fig.contains('B'));
        assert!(fig.contains('?'));
    }

    #[test]
    fn histogram_counts_sum_to_windows() {
        let labels = oracle_labels(GpuModel::RtxA2000, 12 * 12 * 4);
        let r = analyze(&labels);
        let total: u64 = r.histogram.values().sum();
        assert_eq!(total, 12 * 4);
    }
}
