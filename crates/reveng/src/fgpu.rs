//! FGPU's reverse-engineering approach (paper §3.2, Fig. 11) — the
//! baseline SGDRC improves on.
//!
//! FGPU assumes every channel bit is a pure XOR fold of physical address
//! bits and solves for the fold masks with Gaussian elimination over GF(2).
//! Two failure modes, both demonstrated here:
//!
//! 1. **Non-linearity.** GPUs whose channel count is not a power of two
//!    (Tesla P40, RTX A2000) use non-GF(2)-linear mappings; the equation
//!    system is inconsistent and the solve fails outright.
//! 2. **Noise fragility.** "Even one false positive sample can pollute the
//!    equation system" — a single mislabelled sample makes the system of a
//!    *linear* GPU (GTX 1080) inconsistent or yields wrong masks.

use crate::learner::Sample;

/// Number of partition-index bits the solver considers (paper Fig. 10:
/// bits 10–34 of the physical address ⇒ 25 partition bits).
pub const HASH_BITS: u32 = 25;

/// Outcome of the GF(2) solve.
#[derive(Debug, Clone)]
pub enum FgpuOutcome {
    /// Masks recovered (per channel bit, plus an affine constant bit).
    Solved(XorHashModel),
    /// The equation system is inconsistent — the mapping is not a pure XOR
    /// fold (or the samples are noisy).
    Inconsistent {
        /// Channel bit whose system failed first.
        channel_bit: usize,
        /// Number of samples absorbed before the contradiction.
        samples_consumed: usize,
    },
}

/// A solved pure-XOR hash model.
#[derive(Debug, Clone)]
pub struct XorHashModel {
    /// Per channel bit: the XOR fold mask over partition-index bits.
    pub masks: Vec<u64>,
    /// Per channel bit: the affine constant.
    pub constants: Vec<bool>,
}

impl XorHashModel {
    pub fn predict(&self, partition: u64) -> u16 {
        let mut ch = 0u16;
        for (i, (&m, &c)) in self.masks.iter().zip(&self.constants).enumerate() {
            let bit = ((partition & m).count_ones() & 1) as u16 ^ c as u16;
            ch |= bit << i;
        }
        ch
    }

    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        let ok = samples
            .iter()
            .filter(|s| self.predict(s.partition) == s.label)
            .count();
        ok as f64 / samples.len().max(1) as f64
    }
}

/// GF(2) Gaussian elimination for one channel bit. Row representation:
/// low `HASH_BITS` bits are the mask coefficients, bit `HASH_BITS` is the
/// affine constant coefficient (always 1), and the RHS is carried
/// separately.
struct Gf2System {
    /// Pivot rows indexed by leading-bit position.
    pivots: Vec<Option<(u64, bool)>>,
}

impl Gf2System {
    fn new() -> Self {
        Self {
            pivots: vec![None; HASH_BITS as usize + 1],
        }
    }

    /// Adds an equation; returns `false` on contradiction.
    fn add(&mut self, mut row: u64, mut rhs: bool) -> bool {
        while row != 0 {
            let lead = 63 - row.leading_zeros() as usize;
            match self.pivots[lead] {
                Some((prow, prhs)) => {
                    row ^= prow;
                    rhs ^= prhs;
                }
                None => {
                    self.pivots[lead] = Some((row, rhs));
                    return true;
                }
            }
        }
        !rhs // 0 = 1 is the contradiction
    }

    /// Back-substitution with free variables set to zero. Pivot rows only
    /// contain bits *below* their leading bit, so ascending order resolves
    /// every dependency before it is consumed.
    fn solve(&self) -> (u64, bool) {
        let mut assignment = 0u64; // includes the constant bit at HASH_BITS
        for lead in 0..self.pivots.len() {
            if let Some((row, rhs)) = self.pivots[lead] {
                let mut v = rhs;
                let mut rest = row & !(1 << lead);
                while rest != 0 {
                    let b = 63 - rest.leading_zeros() as usize;
                    if (assignment >> b) & 1 == 1 {
                        v = !v;
                    }
                    rest &= !(1 << b);
                }
                if v {
                    assignment |= 1 << lead;
                }
            }
        }
        let constant = (assignment >> HASH_BITS) & 1 == 1;
        (assignment & ((1 << HASH_BITS) - 1), constant)
    }
}

/// FGPU's attack: solve for XOR fold masks from conflict samples.
pub fn solve_xor_hash(samples: &[Sample], num_channels: u16) -> FgpuOutcome {
    assert!(num_channels > 1);
    let channel_bits = (num_channels as f64).log2().ceil() as usize;
    let mut models = Vec::with_capacity(channel_bits);
    for bit in 0..channel_bits {
        let mut sys = Gf2System::new();
        for (i, s) in samples.iter().enumerate() {
            let row = (s.partition & ((1 << HASH_BITS) - 1)) | (1 << HASH_BITS);
            let rhs = (s.label >> bit) & 1 == 1;
            if !sys.add(row, rhs) {
                return FgpuOutcome::Inconsistent {
                    channel_bit: bit,
                    samples_consumed: i + 1,
                };
            }
        }
        models.push(sys.solve());
    }
    FgpuOutcome::Solved(XorHashModel {
        masks: models.iter().map(|&(m, _)| m).collect(),
        constants: models.iter().map(|&(_, c)| c).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::{oracle_test_set, synthetic_samples};
    use gpu_spec::GpuModel;

    #[test]
    fn fgpu_succeeds_on_gtx1080() {
        // FGPU's home turf: a pure-XOR GPU with clean samples.
        let oracle = GpuModel::Gtx1080.channel_hash();
        let train = synthetic_samples(oracle.as_ref(), 1 << 24, 4_096, 0.0, 1);
        match solve_xor_hash(&train, 8) {
            FgpuOutcome::Solved(model) => {
                let test = oracle_test_set(oracle.as_ref(), 1 << 24, 4_096, 2);
                let acc = model.accuracy(&test);
                assert!(acc > 0.9999, "accuracy {acc}");
            }
            other => panic!("expected solve, got {other:?}"),
        }
    }

    #[test]
    fn fgpu_fails_on_non_linear_gpus() {
        // §3.2: "We attempted to reverse engineer other GPUs using FGPU's
        // approach, but all failed."
        for (model, channels) in [(GpuModel::TeslaP40, 12u16), (GpuModel::RtxA2000, 6)] {
            let oracle = model.channel_hash();
            let train = synthetic_samples(oracle.as_ref(), 1 << 20, 4_096, 0.0, 3);
            match solve_xor_hash(&train, channels) {
                FgpuOutcome::Inconsistent { .. } => {}
                FgpuOutcome::Solved(m) => {
                    // If free variables mask the contradiction, accuracy
                    // must still be near chance.
                    let test = oracle_test_set(oracle.as_ref(), 1 << 20, 4_096, 4);
                    let acc = m.accuracy(&test);
                    panic!("{model:?}: solve unexpectedly succeeded (acc {acc})");
                }
            }
        }
    }

    #[test]
    fn one_false_positive_poisons_fgpu() {
        // Fig. 11: "Even one false positive sample can pollute the equation
        // system and the reverse-engineered hash function."
        let oracle = GpuModel::Gtx1080.channel_hash();
        let mut train = synthetic_samples(oracle.as_ref(), 1 << 24, 4_096, 0.0, 5);
        // Flip one label.
        train[100].label ^= 0b011;
        match solve_xor_hash(&train, 8) {
            FgpuOutcome::Inconsistent {
                samples_consumed, ..
            } => {
                assert!(
                    samples_consumed > 100,
                    "contradiction found after the bad sample"
                );
            }
            FgpuOutcome::Solved(m) => {
                let test = oracle_test_set(oracle.as_ref(), 1 << 24, 4_096, 6);
                let acc = m.accuracy(&test);
                assert!(
                    acc < 0.9,
                    "poisoned solve should not stay accurate (acc {acc})"
                );
            }
        }
    }

    #[test]
    fn realistic_noise_rates_break_fgpu() {
        // Pascal-level 1% noise already defeats the approach.
        let oracle = GpuModel::Gtx1080.channel_hash();
        let train = synthetic_samples(oracle.as_ref(), 1 << 24, 4_096, 0.01, 7);
        assert!(
            matches!(solve_xor_hash(&train, 8), FgpuOutcome::Inconsistent { .. }),
            "1% noise must make the system inconsistent"
        );
    }

    #[test]
    fn solver_recovers_exact_masks_on_clean_linear_data() {
        let oracle = GpuModel::Gtx1080.channel_hash();
        let train = synthetic_samples(oracle.as_ref(), 1 << 24, 8_192, 0.0, 8);
        if let FgpuOutcome::Solved(m) = solve_xor_hash(&train, 8) {
            // Functional equivalence on a dense range (mask representation
            // may differ in untouched high bits).
            for p in 0..4096u64 {
                assert_eq!(m.predict(p), oracle.channel_of_partition(p));
            }
        } else {
            panic!("solve failed on clean data");
        }
    }
}
