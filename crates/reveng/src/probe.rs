//! Conflict-probing primitives: paper Algo 1 and Algo 2.
//!
//! * [`is_dram_bank_conflicted`] — Algo 1: refresh the L2, issue two
//!   concurrent loads, and compare the elapsed time against the calibrated
//!   threshold. Addresses with a DRAM bank conflict *must* share a VRAM
//!   channel, because a bank belongs to exactly one channel (§5.1).
//! * [`find_dram_conflict_addrs`] — the scan loop at the top of Algo 3:
//!   walk forward from a seed partition until `need` bank-conflicting
//!   partitions are found.
//! * [`find_cache_conflict_addrs`] — Algo 2: binary-search the minimal
//!   pointer-chase interval `(Addr, Addr']` that evicts `Addr` from the L2,
//!   yielding addresses that share the seed's L2 cacheline set (and hence
//!   its channel).
//!
//! All probes observe the device *only* through load latencies; the
//! ground-truth hash oracle is never consulted.

use gpu_spec::{MmuError, VirtAddr, CACHELINE_BYTES, PARTITION_BYTES};
use mem_sim::{GpuDevice, Thresholds};

/// Algo 1: do `a` and `b` exhibit a DRAM bank conflict?
///
/// Both loads are forced to miss the L2 (refresh first), then issued
/// concurrently; a conflicting pair serializes on the bank and pays the
/// row-activation penalty, exceeding `thresholds.bank_conflict`.
pub fn is_dram_bank_conflicted(
    dev: &mut GpuDevice,
    th: &Thresholds,
    a: VirtAddr,
    b: VirtAddr,
) -> Result<bool, MmuError> {
    dev.flush_l2(); // RefreshL2(v): see `mem_sim::pchase::refresh_via_scan`
    let elapsed = dev.timed_pair(a, b)?;
    Ok(elapsed > th.bank_conflict)
}

/// The scan loop of Algo 3, phase 1: starting after `seed`, walk the
/// candidate partitions in `candidates` (virtual partition base addresses,
/// physically ordered by the caller) until `need` bank-conflicting
/// partitions are collected. Returns their base addresses.
pub fn find_dram_conflict_addrs(
    dev: &mut GpuDevice,
    th: &Thresholds,
    seed: VirtAddr,
    candidates: &[VirtAddr],
    need: usize,
) -> Result<Vec<VirtAddr>, MmuError> {
    let mut out = Vec::with_capacity(need);
    for &cand in candidates {
        if cand == seed {
            continue;
        }
        if is_dram_bank_conflicted(dev, th, seed, cand)? {
            out.push(cand);
            if out.len() >= need {
                break;
            }
        }
    }
    Ok(out)
}

/// Inner predicate of Algo 2: after pointer-chasing `window[..=hi]`, is
/// `window[0]` evicted from the L2?
pub fn is_cacheline_evicted(
    dev: &mut GpuDevice,
    th: &Thresholds,
    window: &[VirtAddr],
    hi: usize,
) -> Result<bool, MmuError> {
    is_cacheline_evicted_excluding(dev, th, window, hi, &[])
}

/// [`is_cacheline_evicted`] with a set of window indices excluded from the
/// chase — used by Algo 2's outer loop to search for the *next* conflicting
/// address after removing the ones already found.
pub fn is_cacheline_evicted_excluding(
    dev: &mut GpuDevice,
    th: &Thresholds,
    window: &[VirtAddr],
    hi: usize,
    excluded: &[usize],
) -> Result<bool, MmuError> {
    dev.flush_l2();
    // Populate: chase the interval (the P-chase read of Algo 2).
    for (i, &addr) in window[..=hi.min(window.len() - 1)].iter().enumerate() {
        if i != 0 && excluded.contains(&i) {
            continue;
        }
        dev.read_u64(addr)?;
    }
    // Re-access the head and time it.
    let (_, lat) = dev.read_u64(window[0])?;
    Ok(lat > th.l2_miss)
}

/// Majority-of-`votes` wrapper around [`is_cacheline_evicted_excluding`]:
/// the black-box replacement noise occasionally evicts the seed early, so a
/// single probe near the eviction boundary is unreliable (§3.2 measures
/// ~1% / ~5% noisy samples on Pascal / Ampere).
pub fn is_cacheline_evicted_voted(
    dev: &mut GpuDevice,
    th: &Thresholds,
    window: &[VirtAddr],
    hi: usize,
    votes: usize,
    excluded: &[usize],
) -> Result<bool, MmuError> {
    let votes = votes.max(1);
    let mut yes = 0;
    for done in 1..=votes {
        if is_cacheline_evicted_excluding(dev, th, window, hi, excluded)? {
            yes += 1;
        }
        if yes * 2 > votes || (done - yes) * 2 > votes {
            break;
        }
    }
    Ok(yes * 2 > votes)
}

/// Algo 2: binary-search the minimal prefix of `window` whose chase evicts
/// `window[0]`, `max_iter` times, excluding previously found endpoints.
/// Every returned address conflicts with `window[0]` for the same L2
/// cacheline set — and therefore lives on the same VRAM channel.
///
/// `window` is a list of cacheline-stride probe addresses, physically
/// ordered, with `window[0]` being the seed.
pub fn find_cache_conflict_addrs(
    dev: &mut GpuDevice,
    th: &Thresholds,
    window: &[VirtAddr],
    max_iter: usize,
) -> Result<Vec<VirtAddr>, MmuError> {
    let mut found = Vec::new();
    let mut excluded: Vec<usize> = Vec::new();
    for _ in 0..max_iter {
        // With the already-found conflicts removed from the chase, the
        // whole remaining window must still evict — otherwise the window is
        // out of conflicting lines.
        if !is_cacheline_evicted_voted(dev, th, window, window.len() - 1, 3, &excluded)? {
            break;
        }
        let mut lo = 1usize;
        let mut hi = window.len() - 1;
        let mut conflict = hi;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if is_cacheline_evicted_voted(dev, th, window, mid, 3, &excluded)? {
                conflict = mid;
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        found.push(window[conflict]);
        excluded.push(conflict);
    }
    Ok(found)
}

/// Builds a cacheline-stride probe window over a partition list: the seed
/// partition's first line followed by the first line of every subsequent
/// partition (Algo 2 operates on such arrays).
pub fn probe_window(partitions: &[VirtAddr]) -> Vec<VirtAddr> {
    partitions.to_vec()
}

/// All eight cacheline addresses inside one 1 KiB partition.
pub fn partition_lines(base: VirtAddr) -> impl Iterator<Item = VirtAddr> {
    (0..PARTITION_BYTES / CACHELINE_BYTES).map(move |i| base.offset(i * CACHELINE_BYTES))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::GpuModel;
    use mem_sim::calibrate_thresholds;

    /// Sorted-by-physical-address partition base VAs of a fresh buffer.
    fn phys_sorted_partitions(dev: &mut GpuDevice, bytes: u64) -> Vec<VirtAddr> {
        let va = dev.malloc(bytes).unwrap();
        let mut pages = dev.parse_page_table(va, bytes).unwrap();
        pages.sort_by_key(|&(_, pa)| pa.0);
        let mut parts = Vec::new();
        for (pva, _) in pages {
            for i in 0..4 {
                parts.push(pva.offset(i * PARTITION_BYTES));
            }
        }
        parts
    }

    #[test]
    fn bank_conflicts_imply_same_channel() {
        // The §5.1 observation this whole pipeline rests on, verified
        // against the oracle: every probed conflict pair shares a channel.
        let mut dev = GpuDevice::new(GpuModel::TeslaP40, 96 << 20, 21);
        let th = calibrate_thresholds(&mut dev, 1).unwrap();
        let parts = phys_sorted_partitions(&mut dev, 48 << 20);
        let seed = parts[0];
        let found =
            find_dram_conflict_addrs(&mut dev, &th, seed, &parts[1..4096.min(parts.len())], 12)
                .unwrap();
        assert!(found.len() >= 8, "too few conflicts found: {}", found.len());
        let seed_ch = dev.oracle_channel_of(seed).unwrap();
        let same = found
            .iter()
            .filter(|&&a| dev.oracle_channel_of(a).unwrap() == seed_ch)
            .count();
        // Pascal: ~1% false positives tolerated (§3.2).
        assert!(
            same * 10 >= found.len() * 9,
            "only {same}/{} conflicts share the seed channel",
            found.len()
        );
    }

    #[test]
    fn cache_conflict_addrs_share_channel_and_set() {
        let mut dev = GpuDevice::new(GpuModel::RtxA2000, 96 << 20, 33);
        let th = calibrate_thresholds(&mut dev, 2).unwrap();
        let parts = phys_sorted_partitions(&mut dev, 64 << 20);
        // Probe window: candidates in the seed's L2 set-group, so the
        // binary search has conflicting lines to find. Set-group of a
        // partition = pa bits above the partition offset (documented L2
        // geometry, verified in mem-sim).
        let sets = dev.spec().l2_sets_per_channel();
        let seed = parts[0];
        let seed_pa = dev.translate(seed).unwrap();
        let seed_group = gpu_spec::address::l2_set_group_of_partition(seed_pa.partition(), sets);
        // Same set-group candidates, each contributing the line that maps
        // to the seed's L2 set (hashed-set geometry).
        let window: Vec<VirtAddr> = std::iter::once(seed)
            .chain(parts.iter().copied().skip(1).filter_map(|p| {
                let pa = dev.translate(p).unwrap();
                (gpu_spec::address::l2_set_group_of_partition(pa.partition(), sets) == seed_group)
                    .then(|| {
                        p.offset(gpu_spec::address::same_set_line_offset(
                            seed_pa.partition(),
                            pa.partition(),
                        ))
                    })
            }))
            .take(600)
            .collect();
        assert!(window.len() >= 200, "window too small: {}", window.len());

        let found = find_cache_conflict_addrs(&mut dev, &th, &window, 6).unwrap();
        assert!(!found.is_empty(), "binary search found nothing");
        let seed_ch = dev.oracle_channel_of(seed).unwrap();
        let same = found
            .iter()
            .filter(|&&a| dev.oracle_channel_of(a).unwrap() == seed_ch)
            .count();
        assert!(
            same * 10 >= found.len() * 8,
            "only {same}/{} cache conflicts share the channel",
            found.len()
        );
    }

    #[test]
    fn eviction_needs_enough_same_set_lines() {
        // Sanity for the binary-search predicate: a short prefix never
        // evicts the seed, the full window does.
        let mut dev = GpuDevice::new(GpuModel::RtxA2000, 96 << 20, 5);
        let th = calibrate_thresholds(&mut dev, 3).unwrap();
        let parts = phys_sorted_partitions(&mut dev, 64 << 20);
        let sets = dev.spec().l2_sets_per_channel();
        let seed_pa = dev.translate(parts[0]).unwrap();
        let seed_group = gpu_spec::address::l2_set_group_of_partition(seed_pa.partition(), sets);
        let window: Vec<VirtAddr> = std::iter::once(parts[0])
            .chain(parts.iter().copied().skip(1).filter_map(|p| {
                let pa = dev.translate(p).unwrap();
                (gpu_spec::address::l2_set_group_of_partition(pa.partition(), sets) == seed_group)
                    .then(|| {
                        p.offset(gpu_spec::address::same_set_line_offset(
                            seed_pa.partition(),
                            pa.partition(),
                        ))
                    })
            }))
            .take(400)
            .collect();
        assert!(
            !is_cacheline_evicted(&mut dev, &th, &window, 4).unwrap(),
            "4 lines cannot evict a 16-way set"
        );
        assert!(
            is_cacheline_evicted(&mut dev, &th, &window, window.len() - 1).unwrap(),
            "the full window must evict the seed"
        );
    }

    #[test]
    fn partition_lines_cover_the_partition() {
        let lines: Vec<_> = partition_lines(VirtAddr(0x1000)).collect();
        assert_eq!(lines.len(), 8);
        assert_eq!(lines[0], VirtAddr(0x1000));
        assert_eq!(lines[7], VirtAddr(0x1000 + 7 * 128));
    }
}
