//! VRAM channel marking — paper Algo 3 with per-channel conflict pools.
//!
//! The marker discovers *channel classes* without any oracle:
//!
//! 1. For an unlabeled seed partition, collect bank-conflicting partitions
//!    (Algo 1 scan) — these provably share the seed's channel (§5.1) up to
//!    the ~1–5% false-positive rate caused by black-box latency noise.
//! 2. Organize the collected partitions into *set-group bins* so that, for
//!    any candidate, the pool contains enough same-set cachelines to
//!    populate the candidate's L2 set completely (the "populate all
//!    available L2 cachelines in the channel" step of §5.1, restricted to
//!    the relevant set — the L2 set-index geometry is public knowledge from
//!    the micro-benchmarking literature, paper ref [30]).
//! 3. Classify any address by reading it, chasing a pool, and re-timing it
//!    (Algo 3): an L2 miss ⇒ the pool's channel evicted it ⇒ same channel.
//!
//! Crucially — Fig. 11 — pool pollution from false-positive conflict
//! samples does **not** corrupt the marking: a few foreign lines cannot
//! fill another channel's cache set, so the eviction verdict stays correct.
//! This is the noise tolerance FGPU's equation system lacks.

use crate::probe::{find_dram_conflict_addrs, is_cacheline_evicted};
use gpu_spec::{MmuError, PhysAddr, VirtAddr, PAGE_BYTES, PARTITION_BYTES};
use mem_sim::{calibrate_thresholds, GpuDevice, Thresholds};
use std::collections::HashMap;

/// A discovered channel class (an opaque label; real channel IDs are only
/// used for verification, mirroring the paper's A/B/C… letters).
pub type ClassId = u16;

/// Tuning knobs for the marker.
#[derive(Debug, Clone)]
pub struct MarkerConfig {
    /// Probe-buffer size in bytes; 0 = allocate the whole simulated window
    /// (needed when a physically contiguous region must be marked).
    pub buffer_bytes: u64,
    /// Pool depth per set-group bin, on top of the L2 associativity.
    /// `ways + margin` lines keep ≥`ways` *true* same-channel lines per bin
    /// even when a few false-positive conflict samples pollute the pool
    /// (~3% from bank probes, up to ~20% from Algo 2 expansion) — if the
    /// true count drops below the associativity, misclassification becomes
    /// systematic rather than noisy.
    pub bin_margin: usize,
    /// Eviction-test repetitions; the majority verdict wins.
    pub vote_rounds: usize,
    /// Upper bound on bank-conflict probes per pool build.
    pub bank_scan_limit: usize,
    /// Seed for threshold calibration.
    pub calibration_seed: u64,
}

impl Default for MarkerConfig {
    fn default() -> Self {
        Self {
            buffer_bytes: 0,
            bin_margin: 6,
            vote_rounds: 3,
            bank_scan_limit: 1_000_000,
            calibration_seed: 0xC0FFEE,
        }
    }
}

/// One pool member: a partition known (with high confidence) to live on
/// this pool's channel.
#[derive(Debug, Clone, Copy)]
struct PoolEntry {
    /// Physical partition index (public via PTE parsing).
    partition: u64,
    /// Virtual address of the partition base.
    base: VirtAddr,
}

/// Per-channel conflict pool: partitions binned by L2 set-group.
#[derive(Debug, Clone)]
pub struct ChannelPool {
    /// `bins[g]` = partitions whose eight lines fall in set-group `g`.
    bins: Vec<Vec<PoolEntry>>,
}

impl ChannelPool {
    fn new(num_set_groups: usize) -> Self {
        Self {
            bins: vec![Vec::new(); num_set_groups],
        }
    }

    fn is_complete(&self, depth: usize) -> bool {
        self.bins.iter().all(|b| b.len() >= depth)
    }

    fn shallowest(&self) -> usize {
        self.bins.iter().map(Vec::len).min().unwrap_or(0)
    }
}

/// Errors from the marking pipeline.
#[derive(Debug)]
pub enum MarkError {
    Mmu(MmuError),
    /// A pool could not be completed within the scan budget.
    IncompletePool {
        class: ClassId,
        shallowest_bin: usize,
        needed: usize,
    },
    /// The requested physical range is not fully covered by the buffer.
    UncoveredRange(PhysAddr),
}

impl From<MmuError> for MarkError {
    fn from(e: MmuError) -> Self {
        MarkError::Mmu(e)
    }
}

impl std::fmt::Display for MarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarkError::Mmu(e) => write!(f, "mmu error: {e}"),
            MarkError::IncompletePool {
                class,
                shallowest_bin,
                needed,
            } => write!(
                f,
                "pool for class {class} incomplete: shallowest bin {shallowest_bin} < {needed}"
            ),
            MarkError::UncoveredRange(pa) => {
                write!(
                    f,
                    "physical address {:#x} not covered by the probe buffer",
                    pa.0
                )
            }
        }
    }
}

impl std::error::Error for MarkError {}

/// The channel-marking engine.
pub struct ChannelMarker<'d> {
    dev: &'d mut GpuDevice,
    th: Thresholds,
    cfg: MarkerConfig,
    /// Partition bases sorted by physical address.
    partitions: Vec<(PhysAddr, VirtAddr)>,
    /// Physical partition index → position in `partitions`.
    by_partition: HashMap<u64, usize>,
    pools: Vec<ChannelPool>,
    sets_per_slice: u64,
    bin_depth: usize,
    /// Class of the previously classified candidate (patterns have spatial
    /// locality, so trying it first saves probes).
    last_class: ClassId,
}

impl<'d> ChannelMarker<'d> {
    /// Allocates the probe buffer, parses its page-table entries (§5.1,
    /// ref [60]) and calibrates latency thresholds.
    pub fn new(dev: &'d mut GpuDevice, cfg: MarkerConfig) -> Result<Self, MarkError> {
        let th = calibrate_thresholds(dev, cfg.calibration_seed)?;
        let bytes = if cfg.buffer_bytes == 0 {
            page_floor(available_bytes(dev))
        } else {
            cfg.buffer_bytes
        };
        let va = dev.malloc(bytes)?;
        let pages = dev.parse_page_table(va, bytes)?;
        let mut partitions = Vec::with_capacity(pages.len() * 4);
        for (pva, ppa) in pages {
            for i in 0..PAGE_BYTES / PARTITION_BYTES {
                partitions.push((
                    ppa.offset(i * PARTITION_BYTES),
                    pva.offset(i * PARTITION_BYTES),
                ));
            }
        }
        partitions.sort_by_key(|&(pa, _)| pa.0);
        let by_partition = partitions
            .iter()
            .enumerate()
            .map(|(i, &(pa, _))| (pa.partition(), i))
            .collect();
        let sets_per_slice = dev.spec().l2_sets_per_channel();
        let bin_depth = dev.spec().l2_ways as usize + cfg.bin_margin;
        Ok(Self {
            dev,
            th,
            cfg,
            partitions,
            by_partition,
            pools: Vec::new(),
            sets_per_slice,
            bin_depth,
            last_class: 0,
        })
    }

    /// Calibrated thresholds in use.
    pub fn thresholds(&self) -> Thresholds {
        self.th
    }

    /// Number of channel classes discovered so far.
    pub fn num_classes(&self) -> usize {
        self.pools.len()
    }

    /// Number of partitions covered by the probe buffer.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    fn set_group(&self, pa: PhysAddr) -> usize {
        gpu_spec::address::l2_set_group_of_partition(pa.partition(), self.sets_per_slice) as usize
    }

    /// Longest physically contiguous run of covered partitions; returns
    /// `(start_index, length)`.
    pub fn longest_contiguous_run(&self) -> (usize, usize) {
        let mut best = (0, 0);
        let mut start = 0;
        for i in 1..=self.partitions.len() {
            let broken = i == self.partitions.len()
                || self.partitions[i].0 .0 != self.partitions[i - 1].0 .0 + PARTITION_BYTES;
            if broken {
                if i - start > best.1 {
                    best = (start, i - start);
                }
                start = i;
            }
        }
        best
    }

    // -- Algo 3 step 1+2: pool construction --------------------------------

    fn build_pool(&mut self, seed_index: usize) -> Result<ChannelPool, MarkError> {
        let num_set_groups =
            (self.sets_per_slice / (PARTITION_BYTES / gpu_spec::CACHELINE_BYTES)) as usize;
        let mut pool = ChannelPool::new(num_set_groups);
        let (seed_pa, seed_va) = self.partitions[seed_index];
        pool.bins[self.set_group(seed_pa)].push(PoolEntry {
            partition: seed_pa.partition(),
            base: seed_va,
        });

        let n = self.partitions.len();
        let mut probes = 0usize;
        // Scan forward from the seed, wrapping, in strides that visit every
        // DRAM row quickly (bank conflicts require distinct rows).
        let mut i = (seed_index + 1) % n;
        while probes < self.cfg.bank_scan_limit && !pool.is_complete(self.bin_depth) {
            let (pa, va) = self.partitions[i];
            let g = self.set_group(pa);
            if pool.bins[g].len() < self.bin_depth + 2 {
                let hits = find_dram_conflict_addrs(self.dev, &self.th, seed_va, &[va], 1)?;
                probes += 1;
                if !hits.is_empty() {
                    pool.bins[g].push(PoolEntry {
                        partition: pa.partition(),
                        base: va,
                    });
                }
            }
            i = (i + 1) % n;
            if i == seed_index {
                i = (i + 1) % n;
            }
            if probes >= n {
                break;
            }
        }
        // Bank conflicts only reach the seed's own DRAM bank class (1/16 of
        // the channel's partitions). Top up shallow bins through Algo 2 —
        // the paper's own chaining: cache-conflict search finds same-channel
        // lines in *other* banks (§5.1 step 1, `CacheConflictAddrs`).
        for g in 0..num_set_groups {
            if pool.bins[g].len() < self.bin_depth {
                self.expand_bin_via_cache_conflicts(&mut pool, g)?;
            }
        }
        if !pool.is_complete(self.bin_depth) {
            return Err(MarkError::IncompletePool {
                class: self.pools.len() as ClassId,
                shallowest_bin: pool.shallowest(),
                needed: self.bin_depth,
            });
        }
        Ok(pool)
    }

    /// Algo 2 expansion of one set-group bin: seed the binary search with a
    /// known pool member and harvest additional same-(channel, set) lines
    /// from the unclassified partitions of the same set group. For every
    /// candidate partition the window contains the one line that maps to
    /// the anchor's L2 set (hashed-set geometry, `same_set_line_offset`).
    fn expand_bin_via_cache_conflicts(
        &mut self,
        pool: &mut ChannelPool,
        g: usize,
    ) -> Result<(), MarkError> {
        let Some(&anchor) = pool.bins[g].first() else {
            return Ok(());
        };
        let known: Vec<u64> = pool.bins[g].iter().map(|e| e.partition).collect();
        let mut window = Vec::with_capacity(512);
        let mut origin: HashMap<u64, PoolEntry> = HashMap::new();
        window.push(anchor.base);
        for &(pa, va) in &self.partitions {
            let p = pa.partition();
            if self.set_group(pa) == g && !known.contains(&p) {
                let line = va.offset(gpu_spec::address::same_set_line_offset(anchor.partition, p));
                origin.insert(
                    line.0,
                    PoolEntry {
                        partition: p,
                        base: va,
                    },
                );
                window.push(line);
                if window.len() >= 512 {
                    break;
                }
            }
        }
        let need = self.bin_depth + 2 - pool.bins[g].len();
        let found = crate::probe::find_cache_conflict_addrs(self.dev, &self.th, &window, need)?;
        for f in found {
            if let Some(&entry) = origin.get(&f.0) {
                pool.bins[g].push(entry);
            }
        }
        Ok(())
    }

    // -- Algo 3 step 3: eviction-based classification ----------------------

    /// Single eviction probe: does `pool` evict the candidate's first line?
    /// Each pool member contributes the one cacheline that shares the
    /// candidate's L2 set (hashed-set geometry).
    fn evicts_once(
        &mut self,
        class: ClassId,
        cand_partition: u64,
        cand_va: VirtAddr,
        bin: usize,
    ) -> Result<bool, MmuError> {
        let lines: Vec<VirtAddr> = self.pools[class as usize].bins[bin]
            .iter()
            .filter(|e| e.partition != cand_partition)
            .take(self.bin_depth)
            .map(|e| {
                e.base.offset(gpu_spec::address::same_set_line_offset(
                    cand_partition,
                    e.partition,
                ))
            })
            .collect();
        let mut window = Vec::with_capacity(lines.len() + 1);
        window.push(cand_va);
        window.extend(lines);
        is_cacheline_evicted(self.dev, &self.th, &window, window.len() - 1)
    }

    fn evicts(
        &mut self,
        class: ClassId,
        cand_pa: PhysAddr,
        cand_va: VirtAddr,
    ) -> Result<bool, MmuError> {
        let bin = self.set_group(cand_pa);
        let cand_partition = cand_pa.partition();
        let rounds = self.cfg.vote_rounds.max(1);
        let mut yes = 0;
        for r in 0..rounds {
            if self.evicts_once(class, cand_partition, cand_va, bin)? {
                yes += 1;
            }
            if yes * 2 > rounds || (r + 1 - yes) * 2 > rounds {
                break; // majority decided
            }
        }
        Ok(yes * 2 > rounds)
    }

    /// Classifies one partition, creating a new class (and its pool) when
    /// no existing pool claims it.
    pub fn classify(&mut self, index: usize) -> Result<ClassId, MarkError> {
        let (pa, va) = self.partitions[index];
        // Locality: try the previous class first.
        let mut order: Vec<ClassId> = (0..self.pools.len() as ClassId).collect();
        if let Some(pos) = order.iter().position(|&c| c == self.last_class) {
            order.swap(0, pos);
        }
        for class in order {
            if self.evicts(class, pa, va)? {
                self.last_class = class;
                return Ok(class);
            }
        }
        let pool = self.build_pool(index)?;
        self.pools.push(pool);
        let class = (self.pools.len() - 1) as ClassId;
        self.last_class = class;
        Ok(class)
    }

    /// Marks `count` partitions starting from buffer index `start`
    /// (physically ordered). Returns `(physical address, class)` pairs.
    pub fn mark_indexed(
        &mut self,
        start: usize,
        count: usize,
    ) -> Result<Vec<(PhysAddr, ClassId)>, MarkError> {
        let mut out = Vec::with_capacity(count);
        for i in start..(start + count).min(self.partitions.len()) {
            let class = self.classify(i)?;
            out.push((self.partitions[i].0, class));
        }
        Ok(out)
    }

    /// Marks every covered partition of the physical range
    /// `[base, base + bytes)`; errors if the range is not fully covered.
    pub fn mark_phys_range(
        &mut self,
        base: PhysAddr,
        bytes: u64,
    ) -> Result<Vec<(PhysAddr, ClassId)>, MarkError> {
        let first = base.partition();
        let count = bytes / PARTITION_BYTES;
        let mut out = Vec::with_capacity(count as usize);
        for p in first..first + count {
            let &idx = self
                .by_partition
                .get(&p)
                .ok_or(MarkError::UncoveredRange(PhysAddr(p * PARTITION_BYTES)))?;
            let class = self.classify(idx)?;
            out.push((self.partitions[idx].0, class));
        }
        Ok(out)
    }

    /// Classifies one partition several times independently *without*
    /// voting — the raw, noisy per-sample labels used to train the hash
    /// learner (§5.3 collects exactly such samples).
    pub fn sample_label(&mut self, index: usize) -> Result<ClassId, MarkError> {
        let saved = self.cfg.vote_rounds;
        self.cfg.vote_rounds = 1;
        let r = self.classify(index);
        self.cfg.vote_rounds = saved;
        r
    }
}

fn page_floor(v: u64) -> u64 {
    v & !(PAGE_BYTES - 1)
}

fn available_bytes(dev: &GpuDevice) -> u64 {
    dev.free_bytes()
}

/// Aligns discovered class labels with oracle channel IDs by majority
/// matching; returns `(class → channel map, agreement fraction)`.
/// **Verification only** — uses the ground-truth oracle.
pub fn align_classes(
    labels: &[(PhysAddr, ClassId)],
    oracle: impl Fn(PhysAddr) -> u16,
    num_channels: u16,
) -> (Vec<Option<u16>>, f64) {
    let num_classes = labels
        .iter()
        .map(|&(_, c)| c)
        .max()
        .map_or(0, |m| m as usize + 1);
    let mut votes = vec![vec![0u64; num_channels as usize]; num_classes];
    for &(pa, class) in labels {
        votes[class as usize][oracle(pa) as usize] += 1;
    }
    let mut mapping: Vec<Option<u16>> = vec![None; num_classes];
    let mut taken = vec![false; num_channels as usize];
    // Greedy assignment by descending vote count.
    let mut entries: Vec<(u64, usize, usize)> = votes
        .iter()
        .enumerate()
        .flat_map(|(c, row)| row.iter().enumerate().map(move |(ch, &v)| (v, c, ch)))
        .collect();
    entries.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
    for (v, class, ch) in entries {
        if v == 0 || mapping[class].is_some() || taken[ch] {
            continue;
        }
        mapping[class] = Some(ch as u16);
        taken[ch] = true;
    }
    let correct = labels
        .iter()
        .filter(|&&(pa, class)| mapping[class as usize] == Some(oracle(pa)))
        .count();
    (mapping, correct as f64 / labels.len().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::GpuModel;

    /// End-to-end marking on an A2000 window; verified against the oracle.
    /// This is the crate's heaviest test (a few seconds) and the backbone
    /// of Fig. 8.
    #[test]
    fn marking_recovers_channels_a2000() {
        let mut dev = GpuDevice::new(GpuModel::RtxA2000, 96 << 20, 99);
        let mut marker = ChannelMarker::new(&mut dev, MarkerConfig::default()).unwrap();
        let (start, len) = marker.longest_contiguous_run();
        assert!(len >= 72, "need a contiguous run, got {len}");
        let count = len.min(144);
        let labels = marker.mark_indexed(start, count).unwrap();
        assert_eq!(labels.len(), count);

        let classes: std::collections::BTreeSet<_> = labels.iter().map(|&(_, c)| c).collect();
        assert_eq!(classes.len(), 6, "A2000 has 6 channels");

        // Oracle check (verification only).
        let hash = GpuModel::RtxA2000.channel_hash();
        let (_, acc) = align_classes(&labels, |pa| hash.channel_of(pa), 6);
        assert!(acc > 0.95, "marking accuracy {acc}");
    }

    #[test]
    fn partition_granularity_is_1kib() {
        // §5.2: each contiguous 1 KiB belongs to one channel, and adjacent
        // partitions (within a group block) differ. Verify by marking the
        // 8 cachelines of a few partitions individually.
        let mut dev = GpuDevice::new(GpuModel::RtxA2000, 96 << 20, 7);
        let mut marker = ChannelMarker::new(&mut dev, MarkerConfig::default()).unwrap();
        let (start, len) = marker.longest_contiguous_run();
        assert!(len >= 4);
        // Mark four adjacent partitions; a 2-KiB block boundary must show
        // two distinct classes overall (group size 2 ⇒ pairs differ).
        let labels = marker.mark_indexed(start, 4).unwrap();
        let distinct: std::collections::BTreeSet<_> = labels.iter().map(|&(_, c)| c).collect();
        assert!(
            distinct.len() >= 2,
            "adjacent partitions must hit ≥2 channels"
        );
    }
}
