//! NVIDIA MPS baseline (§9.2): the GPU is divided into two MPS instances
//! via `CUDA_MPS_ACTIVE_THREAD_PERCENTAGE`; LS and BE are served on
//! separate instances. Thread-level partitioning caps each client's SM
//! occupancy but "isolates SM resources at thread level without addressing
//! intra-SM and VRAM channel conflicts" (§9.3) — both clients still share
//! every SM and every channel.

use exec_sim::{ChannelSet, TpcMask};
use sgdrc_core::serving::{Policy, ServingState};

/// The MPS policy with a configurable LS thread percentage.
#[derive(Debug)]
pub struct Mps {
    /// Active-thread fraction of the LS instance (BE gets the rest).
    pub ls_fraction: f64,
}

impl Default for Mps {
    fn default() -> Self {
        // §9.2: the GPU is evenly divided into two instances.
        Self { ls_fraction: 0.5 }
    }
}

impl Policy for Mps {
    fn name(&self) -> &'static str {
        "MPS"
    }

    fn has_timers(&self) -> bool {
        false
    }

    fn dispatch(&mut self, st: &mut ServingState) {
        let mask = TpcMask::all(st.spec());
        let channels = ChannelSet::all(st.spec());
        if st.ls_launch.is_none() && st.peek_ls().is_some() {
            st.launch_ls(mask, channels, self.ls_fraction);
        }
        if st.be_launch.is_none() && st.peek_be().is_some() {
            st.launch_be(mask, channels, 1.0 - self.ls_fraction, f64::INFINITY);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::smoke_scenario;
    use sgdrc_core::serving::run;

    #[test]
    fn serves_both_classes() {
        let sc = smoke_scenario(6_000.0, 200_000.0);
        let stats = run(&mut Mps::default(), &sc);
        assert!(!stats.ls_completed[0].is_empty());
        assert!(stats.be_completed[0] > 0);
    }

    #[test]
    fn thread_slicing_inflates_ls_latency_more_than_isolation() {
        // MPS halves the LS instance's compute even when BE is idle
        // between kernels, and intra-SM conflicts remain (§9.3).
        let sc = smoke_scenario(10_000.0, 300_000.0);
        let stats = run(&mut Mps::default(), &sc);
        let isolated = sc.ls[0].profile.isolated_e2e_us;
        let mean: f64 = stats.ls_completed[0]
            .iter()
            .map(|r| r.latency_us())
            .sum::<f64>()
            / stats.ls_completed[0].len().max(1) as f64;
        assert!(
            mean > isolated * 1.2,
            "thread slicing must cost latency: {mean} vs {isolated}"
        );
    }
}
