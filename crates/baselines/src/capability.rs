//! The paper's Tab. 2: capability matrix of mainstream GPU sharing
//! solutions.

/// Implementation layer of a sharing solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImplLayer {
    Hardware,
    Driver,
    UserSpace,
    UserAndDriver,
}

/// Reconfiguration cost class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Overhead {
    Low,
    Medium,
    High,
}

/// One row of Tab. 2.
#[derive(Debug, Clone)]
pub struct Capability {
    pub name: &'static str,
    pub scheme: &'static str,
    pub layer: ImplLayer,
    pub all_nvidia_gpus: bool,
    pub compute_partitioning: bool,
    pub vram_bw_partitioning: bool,
    pub compute_dynamic: bool,
    pub vram_bw_dynamic: bool,
    pub reconfig_overhead: Overhead,
}

/// The full Tab. 2 matrix.
pub fn capability_matrix() -> Vec<Capability> {
    use ImplLayer::*;
    use Overhead::*;
    vec![
        Capability {
            name: "MPS",
            scheme: "Native",
            layer: Hardware,
            all_nvidia_gpus: true,
            compute_partitioning: true,
            vram_bw_partitioning: false,
            compute_dynamic: false,
            vram_bw_dynamic: false,
            reconfig_overhead: High,
        },
        Capability {
            name: "MIG",
            scheme: "Native",
            layer: Hardware,
            all_nvidia_gpus: false,
            compute_partitioning: true,
            vram_bw_partitioning: true,
            compute_dynamic: false,
            vram_bw_dynamic: false,
            reconfig_overhead: High,
        },
        Capability {
            name: "FGPU",
            scheme: "Hardware partitioning",
            layer: Driver,
            all_nvidia_gpus: false,
            compute_partitioning: true,
            vram_bw_partitioning: true,
            compute_dynamic: false,
            vram_bw_dynamic: false,
            reconfig_overhead: High,
        },
        Capability {
            name: "TGS",
            scheme: "Temporal multiplexing",
            layer: UserSpace,
            all_nvidia_gpus: true,
            compute_partitioning: false,
            vram_bw_partitioning: false,
            compute_dynamic: true,
            vram_bw_dynamic: false,
            reconfig_overhead: Low,
        },
        Capability {
            name: "Reef",
            scheme: "Spatial multiplexing",
            layer: Driver,
            all_nvidia_gpus: false,
            compute_partitioning: true,
            vram_bw_partitioning: false,
            compute_dynamic: true,
            vram_bw_dynamic: false,
            reconfig_overhead: Medium,
        },
        Capability {
            name: "Paella",
            scheme: "Spatial multiplexing",
            layer: UserSpace,
            all_nvidia_gpus: true,
            compute_partitioning: true,
            vram_bw_partitioning: false,
            compute_dynamic: true,
            vram_bw_dynamic: false,
            reconfig_overhead: Medium,
        },
        Capability {
            name: "Orion",
            scheme: "Interference-aware",
            layer: UserSpace,
            all_nvidia_gpus: true,
            compute_partitioning: false,
            vram_bw_partitioning: false,
            compute_dynamic: false,
            vram_bw_dynamic: false,
            reconfig_overhead: Low,
        },
        Capability {
            name: "KRISP",
            scheme: "Spatial multiplexing",
            layer: Driver,
            all_nvidia_gpus: false,
            compute_partitioning: true,
            vram_bw_partitioning: false,
            compute_dynamic: true,
            vram_bw_dynamic: false,
            reconfig_overhead: Low,
        },
        Capability {
            name: "SGDRC",
            scheme: "Dynamic partitioning",
            layer: UserAndDriver,
            all_nvidia_gpus: true,
            compute_partitioning: true,
            vram_bw_partitioning: true,
            compute_dynamic: true,
            vram_bw_dynamic: true,
            reconfig_overhead: Low,
        },
    ]
}

/// Renders the matrix as a text table.
pub fn render_tab2() -> String {
    let mut out = String::from(
        "Method          | Scheme                 | All GPUs | CU part | BW part | CU dyn | BW dyn | Overhead\n",
    );
    let b = |v: bool| if v { "yes" } else { "no " };
    for c in capability_matrix() {
        out.push_str(&format!(
            "{:<15} | {:<22} | {:<8} | {:<7} | {:<7} | {:<6} | {:<6} | {:?}\n",
            c.name,
            c.scheme,
            b(c.all_nvidia_gpus),
            b(c.compute_partitioning),
            b(c.vram_bw_partitioning),
            b(c.compute_dynamic),
            b(c.vram_bw_dynamic),
            c.reconfig_overhead,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgdrc_is_the_only_fully_dynamic_solution() {
        // Tab. 2's punchline.
        let m = capability_matrix();
        let fully_dynamic: Vec<&Capability> = m
            .iter()
            .filter(|c| {
                c.all_nvidia_gpus
                    && c.compute_partitioning
                    && c.vram_bw_partitioning
                    && c.compute_dynamic
                    && c.vram_bw_dynamic
            })
            .collect();
        assert_eq!(fully_dynamic.len(), 1);
        assert_eq!(fully_dynamic[0].name, "SGDRC");
    }

    #[test]
    fn matrix_has_all_tab2_rows() {
        let names: Vec<&str> = capability_matrix().iter().map(|c| c.name).collect();
        for expect in [
            "MPS", "MIG", "FGPU", "TGS", "Reef", "Paella", "Orion", "KRISP", "SGDRC",
        ] {
            assert!(names.contains(&expect), "{expect} missing");
        }
    }

    #[test]
    fn only_mig_and_fgpu_partition_bandwidth_besides_sgdrc() {
        let m = capability_matrix();
        let bw: Vec<&str> = m
            .iter()
            .filter(|c| c.vram_bw_partitioning)
            .map(|c| c.name)
            .collect();
        assert_eq!(bw, vec!["MIG", "FGPU", "SGDRC"]);
    }

    #[test]
    fn rendering_contains_every_row() {
        let r = render_tab2();
        for c in capability_matrix() {
            assert!(r.contains(c.name));
        }
    }
}
