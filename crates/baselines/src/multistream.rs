//! Multi-streaming baseline (§9.2): two CUDA streams, LS at higher
//! priority, requests forwarded round-robin. Kernels from both streams
//! co-execute on the full GPU with no resource isolation — maximizing
//! throughput at the cost of LS tail latency (Fig. 4b, Fig. 17).

use exec_sim::{ChannelSet, TpcMask};
use sgdrc_core::serving::{Policy, ServingState};

/// The Multi-streaming policy.
#[derive(Debug, Default)]
pub struct MultiStreaming;

impl Policy for MultiStreaming {
    fn name(&self) -> &'static str {
        "Multi-streaming"
    }

    fn has_timers(&self) -> bool {
        false
    }

    fn dispatch(&mut self, st: &mut ServingState) {
        let mask = TpcMask::all(st.spec());
        let channels = ChannelSet::all(st.spec());
        // Higher-priority LS stream dispatches first.
        if st.ls_launch.is_none() && st.peek_ls().is_some() {
            st.launch_ls(mask, channels, 1.0);
        }
        // BE stream: launch whenever its previous kernel finished. No
        // constraints, no isolation — full overlap with the LS kernel.
        if st.be_launch.is_none() && st.peek_be().is_some() {
            st.launch_be(mask, channels, 1.0, f64::INFINITY);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::smoke_scenario;
    use sgdrc_core::serving::run;

    #[test]
    fn serves_both_classes() {
        let sc = smoke_scenario(6_000.0, 200_000.0);
        let stats = run(&mut MultiStreaming, &sc);
        assert!(!stats.ls_completed[0].is_empty());
        assert!(stats.be_completed[0] > 0);
        assert_eq!(stats.be_preemptions, 0, "multi-streaming never preempts");
    }

    #[test]
    fn ls_latency_suffers_from_overlap() {
        // Fig. 4b: spatial multiplexing sacrifices LS latency.
        let sc = smoke_scenario(8_000.0, 300_000.0);
        let stats = run(&mut MultiStreaming, &sc);
        let isolated = sc.ls[0].profile.isolated_e2e_us;
        let worst = stats.ls_completed[0]
            .iter()
            .map(|r| r.latency_us())
            .fold(0.0f64, f64::max);
        assert!(
            worst > isolated * 1.3,
            "co-execution should inflate LS latency: {worst} vs {isolated}"
        );
    }
}
