//! # baselines — the GPU sharing systems SGDRC is compared against
//!
//! All baselines are re-implemented on the shared serving substrate
//! (`sgdrc_core::serving`), exactly as the paper re-implemented Orion's
//! policy inside SGDRC "to ensure a fair comparison" (§9.2):
//!
//! * [`multistream`] — two priority streams, full overlap;
//! * [`tgs`] — temporal multiplexing between two containers with context
//!   switch costs;
//! * [`mps`] — two MPS instances with thread-percentage partitioning;
//! * [`orion`] — interference-aware co-execution with the Res/SM/Runtime
//!   constraint families (Fig. 5b);
//! * [`capability`] — the Tab. 2 capability matrix.
//!
//! The SGDRC (Static) baseline lives in `sgdrc_core::sgdrc` (it is a
//! configuration of the SGDRC policy).

pub mod capability;
pub mod mps;
pub mod multistream;
pub mod orion;
mod testutil;
pub mod tgs;

pub use capability::{capability_matrix, render_tab2, Capability};
pub use mps::Mps;
pub use multistream::MultiStreaming;
pub use orion::{constraint_census, constraint_flags, ConstraintFlags, Orion, OrionConfig};
pub use tgs::Tgs;
