//! TGS baseline (§9.2): transparent GPU sharing between two containers —
//! one LS, one BE — with temporal multiplexing. Only one container's
//! kernels execute at a time; switching containers pays a CUDA-context
//! switch penalty, which (together with the serialization itself) causes
//! TGS's "substantial overhead" and low throughput (§9.3, Fig. 4a).

use exec_sim::{ChannelSet, TpcMask};
use sgdrc_core::serving::{Policy, ServingState};

/// Which container currently owns the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Owner {
    Ls,
    Be,
}

/// The TGS temporal-multiplexing policy.
#[derive(Debug)]
pub struct Tgs {
    /// CUDA context switch latency between containers, µs.
    pub switch_us: f64,
    /// Minimum residency once the BE container owns the GPU, µs. Models
    /// the feedback-based rate control (§9.3): TGS adjusts container
    /// allocations on a coarse feedback period, so LS requests arriving
    /// during a BE quantum wait it out.
    pub be_quantum_us: f64,
    owner: Owner,
    /// Absolute time until which the GPU is switching contexts.
    switching_until: Option<f64>,
    /// Absolute time until which the BE container keeps ownership.
    be_owns_until: f64,
    /// Latest time observed in `dispatch` (timers must be in the future).
    last_seen_now: f64,
}

impl Default for Tgs {
    fn default() -> Self {
        Self {
            switch_us: 1_000.0,
            be_quantum_us: 5_000.0,
            owner: Owner::Ls,
            switching_until: None,
            be_owns_until: 0.0,
            last_seen_now: 0.0,
        }
    }
}

impl Policy for Tgs {
    fn name(&self) -> &'static str {
        "TGS"
    }

    fn has_timers(&self) -> bool {
        true
    }

    fn on_run_start(&mut self, _st: &mut ServingState) {
        // The container clocks are absolute times of one run; reset them
        // so a reused policy instance doesn't start mid-quantum.
        self.owner = Owner::Ls;
        self.switching_until = None;
        self.be_owns_until = 0.0;
        self.last_seen_now = 0.0;
    }

    fn next_timer(&self) -> Option<f64> {
        // Only future deadlines: the quantum expiry matters while the BE
        // container owns the GPU and LS work may be waiting.
        match self.switching_until {
            Some(t) => Some(t),
            None if self.owner == Owner::Be => Some(self.be_owns_until),
            None => None,
        }
        .filter(|&t| t > self.last_seen_now)
    }

    fn dispatch(&mut self, st: &mut ServingState) {
        let now = st.now();
        self.last_seen_now = now;
        if let Some(until) = self.switching_until {
            if now + 1e-9 < until {
                return; // context switch in progress
            }
            self.switching_until = None;
        }
        // Desired owner: LS whenever LS work exists, but the BE container
        // keeps its feedback quantum once granted.
        let desired = if st.ls_ready() || st.ls_launch.is_some() {
            if self.owner == Owner::Be && now + 1e-9 < self.be_owns_until {
                Owner::Be
            } else {
                Owner::Ls
            }
        } else {
            Owner::Be
        };
        if desired != self.owner {
            // Wait for the resident kernel to drain, then pay the switch.
            if st.ls_launch.is_some() || st.be_launch.is_some() {
                return;
            }
            self.switching_until = Some(now + self.switch_us);
            self.owner = desired;
            if desired == Owner::Be {
                self.be_owns_until = now + self.switch_us + self.be_quantum_us;
            }
            return;
        }
        let mask = TpcMask::all(st.spec());
        let channels = ChannelSet::all(st.spec());
        match self.owner {
            Owner::Ls => {
                if st.ls_launch.is_none() && st.peek_ls().is_some() && st.be_launch.is_none() {
                    st.launch_ls(mask, channels, 1.0);
                }
            }
            Owner::Be => {
                if st.be_launch.is_none() && st.peek_be().is_some() && st.ls_launch.is_none() {
                    st.launch_be(mask, channels, 1.0, f64::INFINITY);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::smoke_scenario;
    use sgdrc_core::serving::run;

    #[test]
    fn serves_both_classes_exclusively() {
        let sc = smoke_scenario(8_000.0, 400_000.0);
        let stats = run(&mut Tgs::default(), &sc);
        assert!(!stats.ls_completed[0].is_empty());
        assert!(stats.be_completed[0] > 0, "BE runs in LS idle gaps");
    }

    #[test]
    fn be_starves_under_heavy_ls_load() {
        // Fig. 4a: temporal multiplexing cannot sustain BE throughput when
        // the LS service is busy.
        let light = smoke_scenario(20_000.0, 400_000.0);
        let heavy = smoke_scenario(1_000.0, 400_000.0);
        let be_light = run(&mut Tgs::default(), &light).be_completed[0];
        let be_heavy = run(&mut Tgs::default(), &heavy).be_completed[0];
        assert!(
            be_heavy * 2 <= be_light.max(1),
            "heavy LS load must crush BE throughput ({be_heavy} vs {be_light})"
        );
    }
}
