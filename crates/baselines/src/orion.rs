//! Orion's interference-aware scheduling policy (§3.1, §9.2).
//!
//! The paper re-implemented Orion's policy inside SGDRC's server "to
//! ensure a fair comparison"; this module does the same on the shared
//! serving substrate. Orion co-executes a BE kernel with the running LS
//! kernel only if the BE kernel is *mildly interfering*, enforcing three
//! constraint families (Fig. 5b):
//!
//! * **Res.** — the BE kernel's compute/bandwidth utilization must leave
//!   room for the LS kernel (memory-bound thrashers are excluded);
//! * **SM** — the BE kernel must not demand more SMs than the LS kernel
//!   leaves idle;
//! * **Runtime** — the BE kernel must finish within the LS kernel's
//!   runtime, so it never delays the *next* LS kernel.
//!
//! These constraints keep LS latency low but throttle BE throughput as the
//! LS load grows (Fig. 5a) — the gap SGDRC closes.

use dnn::kernel::KernelDesc;
use dnn::zoo::Model;
use exec_sim::{ChannelSet, TpcMask};
use gpu_spec::GpuSpec;
use sgdrc_core::profiler::{profile_kernel, KernelProfile};
use sgdrc_core::serving::{Policy, ServingState};

/// Which constraints a BE kernel violates (Fig. 5b census).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstraintFlags {
    /// SM / VRAM bandwidth utilization constraint.
    pub res: bool,
    /// Required-SM-count constraint.
    pub sm: bool,
    /// Kernel-runtime constraint.
    pub runtime: bool,
}

impl ConstraintFlags {
    pub fn any(&self) -> bool {
        self.res || self.sm || self.runtime
    }
}

/// Orion's tunables (the paper stresses these are all "indispensable").
#[derive(Debug, Clone)]
pub struct OrionConfig {
    /// BE bandwidth demand must stay below this fraction of the GPU.
    pub res_bw_fraction: f64,
    /// BE kernels may use at most this fraction of the TPCs while an LS
    /// kernel is resident.
    pub sm_fraction: f64,
    /// BE kernel runtime must not exceed LS kernel runtime × this factor.
    pub runtime_factor: f64,
}

impl Default for OrionConfig {
    fn default() -> Self {
        Self {
            res_bw_fraction: 0.40,
            sm_fraction: 1.0,
            runtime_factor: 10.0,
        }
    }
}

/// Evaluates the constraint flags of one BE kernel against a reference LS
/// kernel population (median runtime, typical idle SMs).
pub fn constraint_flags(
    be_kernel: &KernelDesc,
    be_profile: &KernelProfile,
    spec: &GpuSpec,
    cfg: &OrionConfig,
    ls_median_runtime_us: f64,
) -> ConstraintFlags {
    let _ = be_kernel;
    ConstraintFlags {
        res: be_profile.bandwidth_gbps > cfg.res_bw_fraction * spec.mem_bandwidth_gbps,
        // The kernel's latency-optimal TPC demand must leave the LS kernel
        // room on the SMs.
        sm: (be_profile.min_tpcs as f64) >= cfg.sm_fraction * spec.num_tpcs as f64,
        runtime: be_profile.isolated_us > ls_median_runtime_us * cfg.runtime_factor,
    }
}

/// Fig. 5b: per-kernel constraint census of a BE model against the LS
/// kernel population of the given LS models.
pub fn constraint_census(
    be_model: &Model,
    ls_models: &[Model],
    spec: &GpuSpec,
    cfg: &OrionConfig,
) -> Vec<ConstraintFlags> {
    let mut ls_runtimes: Vec<f64> = ls_models
        .iter()
        .flat_map(|m| m.kernels.iter())
        .map(|k| dnn::perf::isolated_runtime_us(k, spec))
        .collect();
    ls_runtimes.sort_by(f64::total_cmp);
    let median = ls_runtimes
        .get(ls_runtimes.len() / 2)
        .copied()
        .unwrap_or(f64::INFINITY);
    be_model
        .kernels
        .iter()
        .map(|k| constraint_flags(k, &profile_kernel(k, spec), spec, cfg, median))
        .collect()
}

/// The Orion scheduling policy.
pub struct Orion {
    cfg: OrionConfig,
}

impl Orion {
    pub fn new(cfg: OrionConfig) -> Self {
        Self { cfg }
    }
}

impl Default for Orion {
    fn default() -> Self {
        Self::new(OrionConfig::default())
    }
}

impl Policy for Orion {
    fn name(&self) -> &'static str {
        "Orion"
    }

    fn has_timers(&self) -> bool {
        false
    }

    fn dispatch(&mut self, st: &mut ServingState) {
        let all_mask = TpcMask::all(st.spec());
        let all_channels = ChannelSet::all(st.spec());
        // LS kernels run unrestricted, highest priority.
        if st.ls_launch.is_none() && st.peek_ls().is_some() {
            st.launch_ls(all_mask, all_channels, 1.0);
        }
        // BE kernels co-execute only when mildly interfering.
        if st.be_launch.is_none() {
            if let Some((task, kidx)) = st.peek_be() {
                let allowed = match st.ls_launch {
                    None => true, // GPU free for BE
                    Some(ls) => {
                        let be_kernel = st.be_kernel(task, kidx);
                        let be_profile = &st.scenario.be[task].profile.kernels[kidx];
                        let ls_profile = &st.scenario.ls[ls.task].profile.kernels[ls.kernel_idx];
                        !constraint_flags(
                            be_kernel,
                            be_profile,
                            st.spec(),
                            &self.cfg,
                            ls_profile.isolated_us,
                        )
                        .any()
                    }
                };
                if allowed {
                    st.launch_be(all_mask, all_channels, 1.0, f64::INFINITY);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::smoke_scenario;
    use dnn::zoo::{build, ModelId};
    use dnn::CompileOptions;
    use gpu_spec::GpuModel;
    use sgdrc_core::serving::run;

    #[test]
    fn serves_both_classes() {
        let sc = smoke_scenario(8_000.0, 300_000.0);
        let stats = run(&mut Orion::default(), &sc);
        assert!(!stats.ls_completed[0].is_empty());
        assert!(stats.be_completed[0] > 0);
    }

    #[test]
    fn fig5b_most_be_kernels_are_constrained() {
        // §3.1: "73.8% of their kernels are subjected to at least one
        // constraint" over BE models I–K.
        let spec = GpuModel::RtxA2000.spec();
        let ls_models: Vec<_> = ModelId::ls_models()
            .iter()
            .map(|&id| dnn::compile(build(id), &spec, CompileOptions::default()))
            .collect();
        let mut constrained = 0usize;
        let mut total = 0usize;
        for id in ModelId::be_models() {
            let be = dnn::compile(build(id), &spec, CompileOptions::default());
            for f in constraint_census(&be, &ls_models, &spec, &OrionConfig::default()) {
                total += 1;
                if f.any() {
                    constrained += 1;
                }
            }
        }
        let frac = constrained as f64 / total as f64;
        assert!(
            (0.55..0.92).contains(&frac),
            "constrained fraction {frac} (paper: 73.8%)"
        );
    }

    #[test]
    fn be_throughput_declines_with_ls_load() {
        // Fig. 5a's shape.
        let light = smoke_scenario(24_000.0, 800_000.0);
        let heavy = smoke_scenario(1_000.0, 800_000.0);
        let be_light = run(&mut Orion::default(), &light).be_completed[0];
        let be_heavy = run(&mut Orion::default(), &heavy).be_completed[0];
        assert!(
            (be_heavy as f64) < be_light as f64 * 0.8,
            "{be_heavy} vs {be_light}"
        );
    }
}
