//! Shared test scenario construction.
#![cfg(test)]

use dnn::zoo::{build, ModelId};
use dnn::CompileOptions;
use gpu_spec::GpuModel;
use sgdrc_core::serving::{Scenario, Task};

/// The paper's motivating pair (Fig. 4/5): MobileNetV3 (LS) +
/// DenseNet161 (BE) on the RTX A2000, with periodic LS arrivals.
pub fn smoke_scenario(arrival_period_us: f64, horizon_us: f64) -> Scenario {
    let spec = GpuModel::RtxA2000.spec();
    let ls_model = dnn::compile(
        build(ModelId::MobileNetV3),
        &spec,
        CompileOptions::default(),
    );
    let be_model = dnn::compile(
        build(ModelId::DenseNet161),
        &spec,
        CompileOptions::default(),
    );
    let arrivals: Vec<f64> = (0..)
        .map(|i| i as f64 * arrival_period_us)
        .take_while(|&t| t < horizon_us)
        .collect();
    let ls = vec![Task::new(ls_model, &spec)];
    let be = vec![Task::new(be_model, &spec)];
    Scenario::new(spec, ls, be, 4, vec![arrivals], horizon_us)
}
