//! Property-based tests for the coloring machinery.
use coloring::{plan_reuse, translate_offset, untranslate_offset, GranularityKib, Interval};
use proptest::prelude::*;

proptest! {
    /// translate/untranslate round-trips for every valid granularity and
    /// sector.
    #[test]
    fn translate_roundtrip(
        logical in 0u64..(1 << 26),
        g in prop::sample::select(vec![1u32, 2, 4]),
        sector_seed in 0u32..4,
    ) {
        let gran = GranularityKib(g);
        let sectors = coloring::sectors_per_page(gran);
        let sector = sector_seed % sectors;
        let colored = translate_offset(logical, gran, sector);
        prop_assert_eq!(untranslate_offset(colored, gran, sector), Some(logical));
    }

    /// Distinct sectors never alias.
    #[test]
    fn sectors_disjoint(a in 0u64..(1 << 20), b in 0u64..(1 << 20)) {
        let g = GranularityKib(2);
        let ca = translate_offset(a, g, 0);
        let cb = translate_offset(b, g, 1);
        prop_assert_ne!(ca / 2048, cb / 2048, "different sectors share a chunk");
    }

    /// The reuse planner is sound (overlapping intervals never share) and
    /// never exceeds the raw footprint.
    #[test]
    fn reuse_soundness(raw in prop::collection::vec((0usize..64, 0usize..16, 1u64..4096), 1..40)) {
        let intervals: Vec<Interval> = raw
            .iter()
            .map(|&(s, len, bytes)| Interval { start: s, end: s + len, bytes })
            .collect();
        let plan = plan_reuse(&intervals);
        for i in 0..intervals.len() {
            for j in (i + 1)..intervals.len() {
                let a = intervals[i];
                let b = intervals[j];
                if a.start <= b.end && b.start <= a.end {
                    prop_assert_ne!(plan.assignment[i], plan.assignment[j]);
                }
            }
        }
        prop_assert!(plan.total_bytes() <= intervals.iter().map(|iv| iv.bytes).sum::<u64>());
        // Buffers are large enough for every resident.
        for (i, iv) in intervals.iter().enumerate() {
            prop_assert!(plan.buffer_bytes[plan.assignment[i]] >= iv.bytes);
        }
    }
}
