//! Intermediate-tensor reuse planner (paper §7.2, Fig. 16).
//!
//! "To further minimize extra memory usage introduced by tensor copies,
//! SGDRC fully reuses tensors storing intermediate results." This module
//! implements the classic liveness-interval buffer-sharing pass: tensors
//! whose `[first_use, last_use]` intervals do not overlap may share a
//! buffer; each buffer is sized to its largest resident.

/// A liveness interval: `[start, end]` inclusive, in kernel-index units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub start: usize,
    pub end: usize,
    pub bytes: u64,
}

/// Result of the planning pass.
#[derive(Debug, Clone)]
pub struct ReusePlan {
    /// `assignment[i]` = buffer index for interval `i`.
    pub assignment: Vec<usize>,
    /// Size of each shared buffer.
    pub buffer_bytes: Vec<u64>,
}

impl ReusePlan {
    /// Total bytes of the shared arena.
    pub fn total_bytes(&self) -> u64 {
        self.buffer_bytes.iter().sum()
    }
}

/// Greedy linear-scan buffer sharing: process intervals by start, place
/// each into the free buffer wasting the least space (best fit), opening a
/// new buffer when none is free.
pub fn plan_reuse(intervals: &[Interval]) -> ReusePlan {
    let mut order: Vec<usize> = (0..intervals.len()).collect();
    order.sort_by_key(|&i| (intervals[i].start, intervals[i].end));

    let mut assignment = vec![usize::MAX; intervals.len()];
    let mut buffer_bytes: Vec<u64> = Vec::new();
    // For each buffer: the end of its current resident's interval.
    let mut busy_until: Vec<Option<usize>> = Vec::new();

    for &i in &order {
        let iv = intervals[i];
        // Free any buffer whose resident ended before this start.
        for b in busy_until.iter_mut() {
            if let Some(end) = *b {
                if end < iv.start {
                    *b = None;
                }
            }
        }
        // Best fit among free buffers: smallest buffer that is ≥ size, else
        // the largest free buffer (growing it minimally).
        let mut candidate: Option<usize> = None;
        for (bi, b) in busy_until.iter().enumerate() {
            if b.is_none() {
                candidate = match candidate {
                    None => Some(bi),
                    Some(prev) => {
                        let pb = buffer_bytes[prev];
                        let cb = buffer_bytes[bi];
                        let fits_prev = pb >= iv.bytes;
                        let fits_cur = cb >= iv.bytes;
                        Some(match (fits_prev, fits_cur) {
                            (true, true) => {
                                if cb < pb {
                                    bi
                                } else {
                                    prev
                                }
                            }
                            (true, false) => prev,
                            (false, true) => bi,
                            (false, false) => {
                                if cb > pb {
                                    bi
                                } else {
                                    prev
                                }
                            }
                        })
                    }
                };
            }
        }
        let b = match candidate {
            Some(b) => b,
            None => {
                buffer_bytes.push(0);
                busy_until.push(None);
                buffer_bytes.len() - 1
            }
        };
        buffer_bytes[b] = buffer_bytes[b].max(iv.bytes);
        busy_until[b] = Some(iv.end);
        assignment[i] = b;
    }
    ReusePlan {
        assignment,
        buffer_bytes,
    }
}

/// Raw footprint with reuse disabled (each interval gets its own buffer).
pub fn no_reuse_bytes(intervals: &[Interval]) -> u64 {
    intervals.iter().map(|iv| iv.bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(start: usize, end: usize, bytes: u64) -> Interval {
        Interval { start, end, bytes }
    }

    #[test]
    fn disjoint_intervals_share_one_buffer() {
        let plan = plan_reuse(&[iv(0, 1, 100), iv(2, 3, 80), iv(4, 5, 90)]);
        assert_eq!(plan.buffer_bytes.len(), 1);
        assert_eq!(plan.total_bytes(), 100);
    }

    #[test]
    fn overlapping_intervals_get_separate_buffers() {
        let plan = plan_reuse(&[iv(0, 5, 100), iv(1, 3, 50), iv(2, 4, 25)]);
        assert_eq!(plan.buffer_bytes.len(), 3);
        assert_eq!(plan.total_bytes(), 175);
    }

    #[test]
    fn chain_pattern_uses_two_buffers() {
        // A typical sequential DNN: tensor i live over [i, i+1] — producer
        // and consumer overlap pairwise, so two ping-pong buffers suffice.
        let intervals: Vec<Interval> = (0..20).map(|i| iv(i, i + 1, 64)).collect();
        let plan = plan_reuse(&intervals);
        assert_eq!(plan.buffer_bytes.len(), 2);
        assert_eq!(plan.total_bytes(), 128);
    }

    #[test]
    fn buffers_grow_to_largest_resident() {
        let plan = plan_reuse(&[iv(0, 1, 10), iv(2, 3, 1000)]);
        assert_eq!(plan.buffer_bytes.len(), 1);
        assert_eq!(plan.total_bytes(), 1000);
    }

    #[test]
    fn no_two_live_intervals_share_a_buffer() {
        // Soundness: overlapping intervals never share.
        let intervals = vec![
            iv(0, 4, 10),
            iv(1, 2, 20),
            iv(3, 6, 30),
            iv(5, 8, 40),
            iv(7, 9, 50),
            iv(2, 3, 60),
        ];
        let plan = plan_reuse(&intervals);
        for i in 0..intervals.len() {
            for j in (i + 1)..intervals.len() {
                let a = intervals[i];
                let b = intervals[j];
                let overlap = a.start <= b.end && b.start <= a.end;
                if overlap {
                    assert_ne!(
                        plan.assignment[i], plan.assignment[j],
                        "live intervals {i} and {j} share a buffer"
                    );
                }
            }
        }
    }

    #[test]
    fn reuse_never_exceeds_raw_footprint() {
        let intervals: Vec<Interval> = (0..50)
            .map(|i| iv(i, i + 1 + (i % 3), 64 + (i as u64 % 7) * 32))
            .collect();
        let plan = plan_reuse(&intervals);
        assert!(plan.total_bytes() <= no_reuse_bytes(&intervals));
    }

    #[test]
    fn empty_input_is_fine() {
        let plan = plan_reuse(&[]);
        assert_eq!(plan.total_bytes(), 0);
        assert!(plan.assignment.is_empty());
    }
}
