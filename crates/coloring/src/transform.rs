//! Kernel index transformation (paper Fig. 12b/12c) and its cost model.
//!
//! A colored tensor only owns one `n`-KiB sector per 4 KiB page, so the
//! kernel's flat array index must be re-mapped to stride over the foreign
//! sectors:
//!
//! ```c
//! // 2 KiB granularity, 4-byte elements (the paper's example):
//! #define translate(offset) ((offset) + ((offset) & 0xFFFFFE00))
//! ```
//!
//! which computes `offset + (offset / sector_elems) * skip_elems`. Each
//! re-indexing costs 2 integer operations ≈ 8 GPU cycles (§6); the
//! measured overheads are ≈2.9% on kernel runtime and ~0.5% end-to-end
//! (§9.1.2), with ~80% of kernels needing no extra registers and >90%
//! needing fewer than 5 (Fig. 15b).

use crate::granularity::{sectors_per_page, GranularityKib};

/// Byte-level index translation: logical byte offset → offset in the
/// strided (colored) virtual layout, plus the sector shift.
#[inline]
pub fn translate_offset(logical: u64, granularity: GranularityKib, sector: u32) -> u64 {
    let g = granularity.bytes();
    let sectors = sectors_per_page(granularity) as u64;
    logical + (logical / g) * (sectors - 1) * g + sector as u64 * g
}

/// The inverse of [`translate_offset`] (for verification): colored layout
/// offset → logical offset. Returns `None` if the address does not belong
/// to the given sector lattice.
pub fn untranslate_offset(colored: u64, granularity: GranularityKib, sector: u32) -> Option<u64> {
    let g = granularity.bytes();
    let sectors = sectors_per_page(granularity) as u64;
    let page = colored / (g * sectors);
    let within = colored % (g * sectors);
    let sec = within / g;
    if sec != sector as u64 {
        return None;
    }
    Some(page * g + within % g)
}

/// Cost model of the transformation, per §6/§9.1.2.
#[derive(Debug, Clone, Copy)]
pub struct TransformCost {
    /// Extra integer instructions per global-memory access.
    pub int_ops_per_access: u32,
    /// Extra GPU cycles per re-indexed access.
    pub cycles_per_access: u32,
}

/// The paper's measured constants: 2 integer ops, 8 cycles (§6).
pub const TRANSFORM_COST: TransformCost = TransformCost {
    int_ops_per_access: 2,
    cycles_per_access: 8,
};

/// Register-pressure model for a transformed kernel (Fig. 15b).
///
/// Theoretically one extra register holds the re-indexing temporary; in
/// practice `nvcc -O3` absorbs it for ~80% of kernels, a few small kernels
/// spill more. The draw is deterministic per kernel identity.
pub fn extra_registers(kernel_id: u64, runtime_us: f64) -> u32 {
    // Deterministic hash → [0, 1).
    let h = kernel_id
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(17)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    if runtime_us < 10.0 && u > 0.93 {
        // Tiny kernels occasionally spill hard under nvcc optimization.
        11 + (h % 8) as u32
    } else if u < 0.80 {
        0
    } else if u < 0.93 {
        1 + (h % 4) as u32
    } else {
        5 + (h % 5) as u32
    }
}

/// Runtime overhead fraction for a transformed kernel: the 8-cycle
/// re-indexing applied to the memory-access share of the kernel's work.
/// Averages ≈2.9% across the model zoo (§9.1.2).
pub fn runtime_overhead_fraction(memory_instr_share: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&memory_instr_share));
    // ~5.5% of a pure-memory kernel's issue slots go to the extra 2 integer
    // ops; scale by the kernel's memory-instruction share.
    0.055 * memory_instr_share
}

#[cfg(test)]
mod tests {
    use super::*;

    const G2: GranularityKib = GranularityKib(2);

    #[test]
    fn translate_matches_paper_macro() {
        // The paper's macro operates on 4-byte element indices:
        // translate(i) = i + (i & 0xFFFFFE00) = i + (i/512)*512 elements.
        for i in [0u64, 1, 511, 512, 513, 1024, 5000] {
            let elem = i * 4;
            let ours = translate_offset(elem, G2, 0);
            let paper = (i + (i & 0xFFFF_FE00)) * 4;
            assert_eq!(ours, paper, "element {i}");
        }
    }

    #[test]
    fn sector_shift_moves_to_second_sector() {
        assert_eq!(translate_offset(0, G2, 1), 2048);
        assert_eq!(translate_offset(100, G2, 1), 2148);
        assert_eq!(translate_offset(2048, G2, 1), 4096 + 2048);
    }

    #[test]
    fn translate_is_bijective_on_the_lattice() {
        for sector in 0..2u32 {
            for logical in (0..64 * 1024u64).step_by(97) {
                let colored = translate_offset(logical, G2, sector);
                assert_eq!(untranslate_offset(colored, G2, sector), Some(logical));
            }
        }
    }

    #[test]
    fn sectors_never_collide() {
        let a: std::collections::BTreeSet<u64> = (0..4096u64)
            .map(|o| translate_offset(o, G2, 0) / 2048)
            .collect();
        let b: std::collections::BTreeSet<u64> = (0..4096u64)
            .map(|o| translate_offset(o, G2, 1) / 2048)
            .collect();
        assert!(a.is_disjoint(&b), "sector lattices must not overlap");
    }

    #[test]
    fn one_kib_granularity_strides_four() {
        let g1 = GranularityKib(1);
        assert_eq!(translate_offset(0, g1, 0), 0);
        assert_eq!(translate_offset(1024, g1, 0), 4096);
        assert_eq!(translate_offset(0, g1, 3), 3072);
    }

    #[test]
    fn register_distribution_matches_fig15b() {
        // ~80% zero, >90% fewer than 5 (both GPUs, §9.1.2).
        let n = 10_000u64;
        let mut zero = 0;
        let mut under5 = 0;
        for k in 0..n {
            let r = extra_registers(k, 50.0);
            if r == 0 {
                zero += 1;
            }
            if r < 5 {
                under5 += 1;
            }
        }
        let zf = zero as f64 / n as f64;
        let uf = under5 as f64 / n as f64;
        assert!((0.75..0.85).contains(&zf), "zero-register share {zf}");
        assert!(uf > 0.90, "under-5 share {uf}");
    }

    #[test]
    fn tiny_kernels_can_spill_hard() {
        let any_big = (0..2000u64).any(|k| extra_registers(k, 5.0) > 10);
        assert!(any_big, "outliers >10 registers exist for tiny kernels");
    }

    #[test]
    fn overhead_scales_with_memory_share() {
        assert_eq!(runtime_overhead_fraction(0.0), 0.0);
        assert!(runtime_overhead_fraction(1.0) < 0.06);
        // A typical mixed kernel (~50% memory instructions) lands near the
        // paper's 2.9% average.
        let typical = runtime_overhead_fraction(0.53);
        assert!((0.025..0.033).contains(&typical), "{typical}");
    }
}
