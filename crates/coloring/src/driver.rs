//! The shadow-page-table driver pool (paper Fig. 12a).
//!
//! The `nvidia-uvm` patch reserves a physical memory pool, splits every
//! 4 KiB frame into `4/n` sectors of `n` KiB, labels each sector with its
//! *color* — the channel group its partitions map to, read from the learned
//! lookup table (§5.3) — and keeps free lists of chunks per
//! `(color, sector-id)`. A colored allocation takes chunks of the requested
//! color and writes the frame numbers into the GPU page table; the kernel's
//! array indices are then re-mapped so the tensor only touches its own
//! sectors (see [`crate::transform`]).

use crate::granularity::{sectors_per_page, GranularityKib};
use gpu_spec::{PhysAddr, VirtAddr, PAGE_BYTES, PARTITION_BYTES};
use std::collections::HashMap;

/// A color: the canonical identifier of the channel set a sector maps to
/// (for group-sized granularity this is the channel-group index; for 1 KiB
/// granularity it is the channel itself).
pub type Color = u16;

/// One free chunk: a sector of a reserved physical frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Physical frame number inside the reserved pool.
    pub pfn: u64,
    /// Sector index within the frame (0 .. 4/n).
    pub sector: u32,
}

/// A colored allocation: enough chunks to hold `logical_bytes`, all of the
/// requested colors, plus the virtual base the tensor is mapped at.
#[derive(Debug, Clone)]
pub struct ColoredAlloc {
    pub va: VirtAddr,
    pub logical_bytes: u64,
    /// One chunk per `granularity` of logical data, in logical order.
    pub chunks: Vec<Chunk>,
    pub granularity: GranularityKib,
    /// Sector index the transformed kernel addresses (uniform across the
    /// allocation so a single `+ sector × size` argument shift suffices).
    pub sector: u32,
}

impl ColoredAlloc {
    /// Virtual bytes consumed (logical bytes × sectors-per-page blow-up:
    /// the transformed index space strides over unused sectors).
    pub fn virtual_bytes(&self) -> u64 {
        self.logical_bytes * sectors_per_page(self.granularity) as u64
    }
}

/// Errors from the colored allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// Not enough chunks of the requested colors remain.
    OutOfColoredMemory { color: Color, sector: u32 },
    /// The allocation handle is unknown (double free).
    UnknownAlloc,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::OutOfColoredMemory { color, sector } => {
                write!(f, "no free chunks of color {color} sector {sector}")
            }
            PoolError::UnknownAlloc => write!(f, "unknown allocation handle"),
        }
    }
}

impl std::error::Error for PoolError {}

/// The reserved pool with per-(color, sector) chunk lists.
#[derive(Debug)]
pub struct ColoredPool {
    granularity: GranularityKib,
    sectors: u32,
    /// Free chunk lists keyed by (color, sector index).
    free: HashMap<(Color, u32), Vec<Chunk>>,
    /// `(pfn, sector) → color` side table for O(1) frees.
    color_table: HashMap<(u64, u32), Color>,
    /// Virtual address bump allocator for colored mappings.
    next_va: u64,
    total_chunks: usize,
    /// Live allocations (handle = va.0).
    live: HashMap<u64, ColoredAlloc>,
}

impl ColoredPool {
    /// Builds the pool over physical frames `[first_frame, first_frame +
    /// frames)`, coloring each sector via `color_of_partition` — in the
    /// real system this closure reads the learned lookup table; tests may
    /// pass the oracle and say so.
    pub fn new(
        first_frame: u64,
        frames: u64,
        granularity: GranularityKib,
        color_of_partition: impl Fn(u64) -> Color,
    ) -> Self {
        let sectors = sectors_per_page(granularity);
        let partitions_per_sector = granularity.bytes() / PARTITION_BYTES;
        let mut free: HashMap<(Color, u32), Vec<Chunk>> = HashMap::new();
        let mut color_table = HashMap::new();
        let mut total = 0usize;
        for pfn in first_frame..first_frame + frames {
            let first_partition = pfn * (PAGE_BYTES / PARTITION_BYTES);
            for sector in 0..sectors {
                // All partitions of one sector share a color by the Tab. 4
                // granularity rule; take the first partition's color.
                let color =
                    color_of_partition(first_partition + sector as u64 * partitions_per_sector);
                free.entry((color, sector))
                    .or_default()
                    .push(Chunk { pfn, sector });
                color_table.insert((pfn, sector), color);
                total += 1;
            }
        }
        Self {
            granularity,
            sectors,
            free,
            color_table,
            next_va: 0x4000_0000_0000, // colored mappings live in their own VA region
            total_chunks: total,
            live: HashMap::new(),
        }
    }

    pub fn granularity(&self) -> GranularityKib {
        self.granularity
    }

    /// Free chunks of one color across all sector positions.
    pub fn free_chunks_of_color(&self, color: Color) -> usize {
        (0..self.sectors)
            .map(|s| self.free.get(&(color, s)).map_or(0, Vec::len))
            .sum()
    }

    pub fn total_chunks(&self) -> usize {
        self.total_chunks
    }

    /// Colors with at least one free chunk.
    pub fn available_colors(&self) -> Vec<Color> {
        let mut colors: Vec<Color> = self.free.keys().map(|&(c, _)| c).collect();
        colors.sort_unstable();
        colors.dedup();
        colors
    }

    /// Allocates `logical_bytes` across chunks whose color is in `colors`,
    /// all at the same sector position (so one argument shift suffices —
    /// Fig. 12c). Chooses the sector position with the most free chunks.
    pub fn alloc_colored(
        &mut self,
        colors: &[Color],
        logical_bytes: u64,
    ) -> Result<ColoredAlloc, PoolError> {
        let need = logical_bytes.div_ceil(self.granularity.bytes()).max(1) as usize;
        // Pick the sector position with the deepest combined free lists.
        let sector = (0..self.sectors)
            .max_by_key(|&s| {
                colors
                    .iter()
                    .map(|&c| self.free.get(&(c, s)).map_or(0, Vec::len))
                    .sum::<usize>()
            })
            .unwrap_or(0);
        let available: usize = colors
            .iter()
            .map(|&c| self.free.get(&(c, sector)).map_or(0, Vec::len))
            .sum();
        if available < need {
            return Err(PoolError::OutOfColoredMemory {
                color: colors.first().copied().unwrap_or(0),
                sector,
            });
        }
        let mut chunks = Vec::with_capacity(need);
        let mut color_cursor = 0usize;
        while chunks.len() < need {
            let c = colors[color_cursor % colors.len()];
            color_cursor += 1;
            if let Some(list) = self.free.get_mut(&(c, sector)) {
                if let Some(chunk) = list.pop() {
                    chunks.push(chunk);
                }
            }
        }
        let va = VirtAddr(self.next_va);
        // Virtual span: one page per chunk (the tensor strides sectors).
        self.next_va += (need as u64) * PAGE_BYTES;
        let alloc = ColoredAlloc {
            va,
            logical_bytes,
            chunks,
            granularity: self.granularity,
            sector,
        };
        self.live.insert(va.0, alloc.clone());
        Ok(alloc)
    }

    /// Returns an allocation's chunks to the free lists.
    pub fn free_colored(&mut self, va: VirtAddr) -> Result<(), PoolError> {
        let alloc = self.live.remove(&va.0).ok_or(PoolError::UnknownAlloc)?;
        for chunk in alloc.chunks {
            // Color is recoverable from the chunk position; key lists by
            // re-deriving via the stored mapping: we track it implicitly by
            // storing chunks back under their (color, sector). Since color
            // is not stored in Chunk, keep a reverse map.
            self.reinsert(chunk);
        }
        Ok(())
    }

    fn reinsert(&mut self, chunk: Chunk) {
        let color = self.color_table[&(chunk.pfn, chunk.sector)];
        self.free
            .entry((color, chunk.sector))
            .or_default()
            .push(chunk);
    }

    /// Color of a pool chunk.
    pub fn color_of(&self, chunk: Chunk) -> Color {
        self.color_table[&(chunk.pfn, chunk.sector)]
    }

    /// Page-table entries an allocation needs: `(virtual page, physical
    /// frame)` pairs in logical order (Fig. 12a ❸).
    pub fn page_table_entries(&self, alloc: &ColoredAlloc) -> Vec<(VirtAddr, PhysAddr)> {
        alloc
            .chunks
            .iter()
            .enumerate()
            .map(|(i, ch)| {
                (
                    VirtAddr(alloc.va.0 + i as u64 * PAGE_BYTES),
                    PhysAddr(ch.pfn * PAGE_BYTES),
                )
            })
            .collect()
    }

    /// Bytes of colored memory currently live.
    pub fn live_bytes(&self) -> u64 {
        self.live.values().map(|a| a.logical_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::granularity::GranularityKib;
    use gpu_spec::GpuModel;

    /// Pool over the A2000 oracle LUT at 2 KiB granularity: sector color =
    /// channel-group index.
    fn a2000_pool(frames: u64) -> ColoredPool {
        let hash = GpuModel::RtxA2000.channel_hash();
        ColoredPool::new(0, frames, GranularityKib(2), move |p| {
            hash.channel_of_partition(p) / 2
        })
    }

    #[test]
    fn pool_enumerates_all_sectors() {
        let pool = a2000_pool(256);
        assert_eq!(pool.total_chunks(), 256 * 2);
        assert_eq!(pool.available_colors(), vec![0, 1, 2]);
    }

    #[test]
    fn colors_are_balanced() {
        let pool = a2000_pool(384);
        let counts: Vec<usize> = (0..3).map(|c| pool.free_chunks_of_color(c)).collect();
        let total: usize = counts.iter().sum();
        assert_eq!(total, 384 * 2);
        for &c in &counts {
            assert!(
                c * 4 > total,
                "uniform hash must balance colors: {counts:?}"
            );
        }
    }

    #[test]
    fn alloc_respects_colors() {
        let mut pool = a2000_pool(256);
        let alloc = pool.alloc_colored(&[1], 64 * 1024).unwrap();
        assert_eq!(alloc.chunks.len(), 32);
        for &ch in &alloc.chunks {
            assert_eq!(pool.color_of(ch), 1);
        }
        // All chunks share a sector position (single argument shift).
        assert!(alloc.chunks.iter().all(|c| c.sector == alloc.sector));
    }

    #[test]
    fn alloc_and_free_round_trip() {
        let mut pool = a2000_pool(128);
        let before = pool.free_chunks_of_color(0);
        let alloc = pool.alloc_colored(&[0], 16 * 1024).unwrap();
        assert_eq!(pool.free_chunks_of_color(0), before - 8);
        pool.free_colored(alloc.va).unwrap();
        assert_eq!(pool.free_chunks_of_color(0), before);
        assert_eq!(pool.free_colored(alloc.va), Err(PoolError::UnknownAlloc));
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut pool = a2000_pool(16);
        assert!(matches!(
            pool.alloc_colored(&[0], 1 << 20),
            Err(PoolError::OutOfColoredMemory { .. })
        ));
    }

    #[test]
    fn virtual_blowup_matches_sector_count() {
        let mut pool = a2000_pool(256);
        let alloc = pool.alloc_colored(&[2], 32 * 1024).unwrap();
        // 2 KiB granularity on 4 KiB pages: tensor strides 2 sectors.
        assert_eq!(alloc.virtual_bytes(), 64 * 1024);
    }

    #[test]
    fn page_table_entries_cover_all_chunks() {
        let mut pool = a2000_pool(256);
        let alloc = pool.alloc_colored(&[0, 1], 24 * 1024).unwrap();
        let ptes = pool.page_table_entries(&alloc);
        assert_eq!(ptes.len(), alloc.chunks.len());
        // Virtual pages are consecutive.
        for (i, (va, _)) in ptes.iter().enumerate() {
            assert_eq!(va.0, alloc.va.0 + i as u64 * 4096);
        }
    }

    #[test]
    fn multi_color_allocation_interleaves() {
        let mut pool = a2000_pool(256);
        let alloc = pool.alloc_colored(&[0, 1, 2], 60 * 1024).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for &ch in &alloc.chunks {
            seen.insert(pool.color_of(ch));
        }
        assert_eq!(seen.len(), 3, "all colors used");
    }
}
