//! # coloring — fine-grained software cache coloring and bimodal tensors
//!
//! Implements SGDRC's VRAM-bandwidth partitioning machinery (paper §6 and
//! §7.2):
//!
//! * [`granularity`] — Tab. 4 / §A.3 coloring-granularity rules and the
//!   `Ch_BE` channel split;
//! * [`driver`] — the shadow-page-table pool inside the simulated
//!   `nvidia-uvm`: per-(color, sector) chunk lists over a reserved physical
//!   region, colored allocation, page-table entry emission (Fig. 12a);
//! * [`transform`] — the kernel index transformation (Fig. 12b/c) with its
//!   measured cost model (2 int ops / 8 cycles per access, ≈2.9% kernel
//!   overhead, Fig. 15b register distribution);
//! * [`bimodal`] — dual-copy BE weight tensors, movable LS tensors and the
//!   monopolization/colocation mode logic (Fig. 14);
//! * [`reuse`] — the liveness-based intermediate-tensor reuse planner that
//!   keeps bimodal footprints in check (Fig. 16).

pub mod bimodal;
pub mod driver;
pub mod granularity;
pub mod reuse;
pub mod transform;

pub use bimodal::{
    plan_tensors, select_copy, vram_footprint, CopySelection, Mode, TaskClass, TensorDesc,
    TensorPlan, TensorRole,
};
pub use driver::{Chunk, Color, ColoredAlloc, ColoredPool, PoolError};
pub use granularity::{
    granularity_for_allocation, sectors_per_page, split_channels, valid_granularities,
    ChannelSplit, GranularityKib,
};
pub use reuse::{no_reuse_bytes, plan_reuse, Interval, ReusePlan};
pub use transform::{
    extra_registers, runtime_overhead_fraction, translate_offset, untranslate_offset,
    TransformCost, TRANSFORM_COST,
};
