//! Bimodal tensors — dynamic VRAM bandwidth scaling (paper §7.2, Fig. 14).
//!
//! SGDRC keeps **two copies** of every memory-bound BE *weight* tensor:
//! one mapped to all VRAM channels, one mapped to the `Ch_BE` subset. The
//! copy a kernel receives depends on the serving mode:
//!
//! * **Monopolization** (LS queue empty): everything maps to all channels,
//!   BE enjoys the full bandwidth.
//! * **Colocation** (LS kernels present): memory-bound BE tensors map to
//!   the `Ch_BE` channels, isolating the LS channels.
//!
//! LS memory-bound tensors have a single copy that is *moved* between the
//! all-channel pool and the LS-channel pool (moving = remapping, cheap).
//! Intermediate tensors are reused aggressively to cap the footprint
//! (Fig. 16); the reuse planner lives in [`crate::reuse`].

/// Task class of the tensor's owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskClass {
    /// Latency-sensitive, high priority.
    Ls,
    /// Best-effort, low priority.
    Be,
}

/// Role of a tensor inside the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorRole {
    /// Model weights: persistent, read-only, allocated once.
    Weight,
    /// Intermediate activations: producer/consumer within one inference.
    Intermediate,
    /// Network input / final output buffers.
    Io,
}

/// A tensor descriptor as seen by the allocator.
#[derive(Debug, Clone)]
pub struct TensorDesc {
    pub name: String,
    pub bytes: u64,
    pub role: TensorRole,
    /// Whether a memory-bound kernel accesses this tensor (offline
    /// profiling, §6).
    pub memory_bound: bool,
    /// Index of the first kernel that reads or writes the tensor.
    pub first_use: usize,
    /// Index of the last kernel that reads or writes the tensor.
    pub last_use: usize,
}

/// Serving mode (Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No colocated LS work: all channels available.
    Monopolization,
    /// LS and BE colocated: BE restricted to `Ch_BE`.
    Colocation,
}

/// Which physical copy / mapping a kernel argument should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopySelection {
    /// The copy mapped across all VRAM channels.
    AllChannels,
    /// The copy mapped to the task's channel subset.
    Restricted,
}

/// Per-tensor placement plan produced by [`plan_tensors`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorPlan {
    pub name: String,
    pub bytes: u64,
    /// Maintain a second, channel-restricted copy (BE memory-bound weights
    /// and outputs: "2 copies", §7.2).
    pub dual_copy: bool,
    /// Movable single copy (LS memory-bound tensors: remapped on demand).
    pub movable: bool,
}

/// Decides copy strategy for every tensor of a task (Fig. 14's rules).
pub fn plan_tensors(class: TaskClass, tensors: &[TensorDesc]) -> Vec<TensorPlan> {
    tensors
        .iter()
        .map(|t| {
            let (dual, movable) = match (class, t.memory_bound, t.role) {
                // BE memory-bound weights keep two copies for fast scaling.
                (TaskClass::Be, true, TensorRole::Weight) => (true, false),
                // BE memory-bound intermediates/outputs follow the mode of
                // the kernel that produces them — single copy, mapped per
                // state at allocation time (they are short-lived).
                (TaskClass::Be, true, _) => (false, false),
                // LS memory-bound tensors: one copy, moved between pools.
                (TaskClass::Ls, true, _) => (false, true),
                // Non-memory-bound tensors never pay for isolation.
                _ => (false, false),
            };
            TensorPlan {
                name: t.name.clone(),
                bytes: t.bytes,
                dual_copy: dual,
                movable,
            }
        })
        .collect()
}

/// Copy selection for a kernel argument under a serving mode (Fig. 14).
pub fn select_copy(mode: Mode, plan: &TensorPlan, class: TaskClass) -> CopySelection {
    match (mode, class) {
        // Monopolization: everyone uses the all-channel mapping.
        (Mode::Monopolization, _) => CopySelection::AllChannels,
        // Colocation: BE memory-bound tensors restrict to Ch_BE; LS
        // memory-bound tensors restrict to the LS channels (their movable
        // copy has been moved).
        (Mode::Colocation, TaskClass::Be) if plan.dual_copy || plan.movable => {
            CopySelection::Restricted
        }
        (Mode::Colocation, TaskClass::Be) => {
            // Single-copy memory-bound BE intermediates are allocated in
            // the restricted pool while colocated.
            if plan.bytes > 0 && !plan.dual_copy && !plan.movable {
                CopySelection::AllChannels
            } else {
                CopySelection::Restricted
            }
        }
        (Mode::Colocation, TaskClass::Ls) if plan.movable => CopySelection::Restricted,
        (Mode::Colocation, TaskClass::Ls) => CopySelection::AllChannels,
    }
}

/// VRAM footprint of a tensor set under a copy plan (Fig. 16's metric).
/// `reuse_factor` is the intermediate-tensor footprint after buffer reuse
/// (bytes), computed by the reuse planner; pass the raw sum to model
/// "reuse disabled".
pub fn vram_footprint(
    plans: &[TensorPlan],
    tensors: &[TensorDesc],
    reused_intermediate_bytes: u64,
) -> u64 {
    let weights_io: u64 = tensors
        .iter()
        .zip(plans)
        .filter(|(t, _)| t.role != TensorRole::Intermediate)
        .map(|(t, p)| if p.dual_copy { 2 * t.bytes } else { t.bytes })
        .sum();
    // Intermediates never dual-copy; their footprint is the reuse plan's.
    // A second copy of the *reused arena* is still needed for bimodal
    // switching of memory-bound intermediates, which the planner accounts
    // for by sizing the arena per channel-set.
    weights_io + reused_intermediate_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str, bytes: u64, role: TensorRole, mb: bool) -> TensorDesc {
        TensorDesc {
            name: name.into(),
            bytes,
            role,
            memory_bound: mb,
            first_use: 0,
            last_use: 1,
        }
    }

    #[test]
    fn be_memory_bound_weights_get_two_copies() {
        let tensors = vec![
            t("w0", 100, TensorRole::Weight, true),
            t("w1", 100, TensorRole::Weight, false),
            t("a0", 100, TensorRole::Intermediate, true),
        ];
        let plans = plan_tensors(TaskClass::Be, &tensors);
        assert!(plans[0].dual_copy);
        assert!(!plans[1].dual_copy, "non-memory-bound weights: one copy");
        assert!(!plans[2].dual_copy, "intermediates: one copy");
    }

    #[test]
    fn ls_memory_bound_tensors_are_movable() {
        let tensors = vec![
            t("w0", 100, TensorRole::Weight, true),
            t("w1", 100, TensorRole::Weight, false),
        ];
        let plans = plan_tensors(TaskClass::Ls, &tensors);
        assert!(plans[0].movable && !plans[0].dual_copy);
        assert!(!plans[1].movable);
    }

    #[test]
    fn monopolization_uses_all_channels() {
        let tensors = vec![t("w0", 100, TensorRole::Weight, true)];
        let plans = plan_tensors(TaskClass::Be, &tensors);
        assert_eq!(
            select_copy(Mode::Monopolization, &plans[0], TaskClass::Be),
            CopySelection::AllChannels
        );
    }

    #[test]
    fn colocation_restricts_be_weights() {
        let tensors = vec![t("w0", 100, TensorRole::Weight, true)];
        let plans = plan_tensors(TaskClass::Be, &tensors);
        assert_eq!(
            select_copy(Mode::Colocation, &plans[0], TaskClass::Be),
            CopySelection::Restricted
        );
    }

    #[test]
    fn colocation_moves_ls_tensors_to_ls_channels() {
        let tensors = vec![t("w0", 100, TensorRole::Weight, true)];
        let plans = plan_tensors(TaskClass::Ls, &tensors);
        assert_eq!(
            select_copy(Mode::Colocation, &plans[0], TaskClass::Ls),
            CopySelection::Restricted
        );
    }

    #[test]
    fn non_memory_bound_ls_stays_on_all_channels() {
        let tensors = vec![t("w0", 100, TensorRole::Weight, false)];
        let plans = plan_tensors(TaskClass::Ls, &tensors);
        assert_eq!(
            select_copy(Mode::Colocation, &plans[0], TaskClass::Ls),
            CopySelection::AllChannels
        );
    }

    #[test]
    fn footprint_doubles_without_dual_copy_only_for_duals() {
        let tensors = vec![
            t("w0", 100, TensorRole::Weight, true),
            t("w1", 50, TensorRole::Weight, false),
            t("a0", 200, TensorRole::Intermediate, true),
        ];
        let plans = plan_tensors(TaskClass::Be, &tensors);
        // Reuse disabled: intermediates cost their raw sum.
        assert_eq!(vram_footprint(&plans, &tensors, 200), 2 * 100 + 50 + 200);
        // Reuse shrinks only the intermediate share.
        assert_eq!(vram_footprint(&plans, &tensors, 80), 2 * 100 + 50 + 80);
    }
}
