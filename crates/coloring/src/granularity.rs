//! Coloring-granularity rules (paper Tab. 4 and §A.3).
//!
//! * Minimum coloring granularity = channel-partition size (1 KiB).
//! * Maximum coloring granularity = (max # contiguous VRAM channels) KiB —
//!   the block size `g` of the permutation layout.
//! * Allocating `2^N` channels to a task ⇒ granularity
//!   `min(2^N, max granularity)` KiB; a non-power-of-two channel count
//!   forces 1 KiB granularity.

use gpu_spec::GpuSpec;

/// A coloring granularity in KiB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GranularityKib(pub u32);

impl GranularityKib {
    pub fn bytes(self) -> u64 {
        self.0 as u64 * 1024
    }
}

/// Valid coloring granularities for a GPU: every power of two from the
/// minimum to the maximum (Tab. 4).
pub fn valid_granularities(spec: &GpuSpec) -> Vec<GranularityKib> {
    let mut out = Vec::new();
    let mut g = spec.min_coloring_granularity_kib;
    while g <= spec.max_coloring_granularity_kib {
        out.push(GranularityKib(g));
        g *= 2;
    }
    out
}

/// §A.3 rule: granularity when allocating `channels` channels to one task.
pub fn granularity_for_allocation(spec: &GpuSpec, channels: u16) -> GranularityKib {
    assert!(channels >= 1 && channels <= spec.num_channels);
    if channels.is_power_of_two() {
        GranularityKib((channels as u32).min(spec.max_coloring_granularity_kib))
    } else {
        GranularityKib(spec.min_coloring_granularity_kib)
    }
}

/// Sectors per 4 KiB page at a given granularity.
pub fn sectors_per_page(gran: GranularityKib) -> u32 {
    4096 / (gran.0 * 1024)
}

/// The channel split used by SGDRC: `ch_be` of the channels (by count,
/// rounded to whole groups) go to BE tasks, the rest to LS tasks. The
/// paper tunes `Ch_BE = 1/3` and fixes the granularity at 2 KiB (§6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSplit {
    /// Channels reserved for best-effort (colocation state).
    pub be_channels: Vec<u16>,
    /// Channels reserved for latency-sensitive tasks.
    pub ls_channels: Vec<u16>,
}

/// Splits channels along group boundaries so that a whole number of
/// `contiguous_channels`-sized groups goes to BE.
pub fn split_channels(spec: &GpuSpec, ch_be: f64) -> ChannelSplit {
    assert!((0.0..1.0).contains(&ch_be));
    let group = spec.contiguous_channels.max(1);
    let groups = spec.num_channels / group;
    let be_groups = ((groups as f64 * ch_be).round() as u16).clamp(0, groups.saturating_sub(1));
    let be_channels: Vec<u16> = (0..be_groups * group).collect();
    let ls_channels: Vec<u16> = (be_groups * group..spec.num_channels).collect();
    ChannelSplit {
        be_channels,
        ls_channels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::GpuModel;

    #[test]
    fn tab4_valid_granularities() {
        let p40 = GpuModel::TeslaP40.spec();
        assert_eq!(
            valid_granularities(&p40),
            vec![GranularityKib(1), GranularityKib(2), GranularityKib(4)]
        );
        let a2000 = GpuModel::RtxA2000.spec();
        assert_eq!(
            valid_granularities(&a2000),
            vec![GranularityKib(1), GranularityKib(2)]
        );
    }

    #[test]
    fn a3_rules() {
        let p40 = GpuModel::TeslaP40.spec();
        // 2^N channels: min(2^N, max granularity).
        assert_eq!(granularity_for_allocation(&p40, 2), GranularityKib(2));
        assert_eq!(granularity_for_allocation(&p40, 4), GranularityKib(4));
        assert_eq!(granularity_for_allocation(&p40, 8), GranularityKib(4));
        // Non-power-of-two: only 1 KiB.
        assert_eq!(granularity_for_allocation(&p40, 3), GranularityKib(1));
        assert_eq!(granularity_for_allocation(&p40, 12), GranularityKib(1));
    }

    #[test]
    fn sectors_per_page_inverts_granularity() {
        assert_eq!(sectors_per_page(GranularityKib(1)), 4);
        assert_eq!(sectors_per_page(GranularityKib(2)), 2);
        assert_eq!(sectors_per_page(GranularityKib(4)), 1);
    }

    #[test]
    fn paper_split_one_third_a2000() {
        // §6: Ch_BE = 1/3 ⇒ one of the three groups (2 of 6 channels).
        let spec = GpuModel::RtxA2000.spec();
        let split = split_channels(&spec, 1.0 / 3.0);
        assert_eq!(split.be_channels, vec![0, 1]);
        assert_eq!(split.ls_channels, vec![2, 3, 4, 5]);
    }

    #[test]
    fn paper_split_one_third_p40() {
        let spec = GpuModel::TeslaP40.spec();
        let split = split_channels(&spec, 1.0 / 3.0);
        assert_eq!(split.be_channels.len(), 4);
        assert_eq!(split.ls_channels.len(), 8);
        // Split respects group boundaries.
        assert_eq!(split.be_channels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn split_never_starves_ls() {
        for model in GpuModel::all() {
            let spec = model.spec();
            let split = split_channels(&spec, 0.9);
            assert!(!split.ls_channels.is_empty(), "{}", spec.name);
        }
    }
}
