//! DRAM channel model: banks, row buffers and MSHRs.
//!
//! Within a VRAM channel, "a DRAM bank can only serve one request in a
//! clock cycle, [so] memory requests from multiple threads to the same
//! DRAM bank must be processed sequentially" (paper §2.2, citing FGPU).
//! Two addresses in the same bank but different rows additionally pay a
//! row-activation penalty — the signal Algo 1 uses to find bank-conflicting
//! address pairs.

use gpu_spec::PhysAddr;

/// Where a DRAM access landed relative to the bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The bank's row buffer already held the row.
    RowHit,
    /// A different row was open; precharge + activate required.
    RowConflict,
    /// The bank was idle (first access).
    RowEmpty,
}

/// One DRAM bank with a single open-row buffer.
#[derive(Debug, Clone, Default)]
struct Bank {
    open_row: Option<u64>,
}

/// The DRAM side of one VRAM channel.
#[derive(Debug, Clone)]
pub struct DramChannel {
    banks: Vec<Bank>,
    /// log2 of the row size in bytes. Addresses in the same bank whose
    /// upper bits differ map to different rows.
    row_shift: u32,
}

impl DramChannel {
    pub fn new(num_banks: u32, row_shift: u32) -> Self {
        assert!(num_banks.is_power_of_two());
        Self {
            banks: vec![Bank::default(); num_banks as usize],
            row_shift,
        }
    }

    /// Bank index of a physical address. Folds partition bits, row bits and
    /// higher bits (as real DRAM bank hashes do) so that bank selection is
    /// decorrelated from both channel interleaving and L2 set placement —
    /// sequential partitions of one channel spread over all banks.
    #[inline]
    pub fn bank_of(&self, addr: PhysAddr) -> usize {
        let mask = (self.banks.len() - 1) as u64;
        (((addr.0 >> 10) ^ (addr.0 >> self.row_shift) ^ (addr.0 >> 23)) & mask) as usize
    }

    /// Row index of a physical address.
    #[inline]
    pub fn row_of(&self, addr: PhysAddr) -> u64 {
        addr.0 >> self.row_shift
    }

    /// Performs an access, updating the bank's open row.
    pub fn access(&mut self, addr: PhysAddr) -> RowOutcome {
        let bank = self.bank_of(addr);
        let row = self.row_of(addr);
        let b = &mut self.banks[bank];
        let outcome = match b.open_row {
            Some(open) if open == row => RowOutcome::RowHit,
            Some(_) => RowOutcome::RowConflict,
            None => RowOutcome::RowEmpty,
        };
        b.open_row = Some(row);
        outcome
    }

    /// True when two addresses hit the same bank but different rows — the
    /// condition Algo 1 detects through latency.
    pub fn conflicts(&self, a: PhysAddr, b: PhysAddr) -> bool {
        self.bank_of(a) == self.bank_of(b) && self.row_of(a) != self.row_of(b)
    }

    /// Closes all row buffers (e.g. after refresh).
    pub fn precharge_all(&mut self) {
        for b in &mut self.banks {
            b.open_row = None;
        }
    }

    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> DramChannel {
        DramChannel::new(16, 17)
    }

    #[test]
    fn first_access_is_empty_then_hit() {
        let mut c = ch();
        let a = PhysAddr(0x1_0000);
        assert_eq!(c.access(a), RowOutcome::RowEmpty);
        assert_eq!(c.access(a), RowOutcome::RowHit);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut c = ch();
        let a = PhysAddr(0);
        // Same bank: bank = (p>>10 ^ p>>17) & 15. Construct b with a row
        // delta whose bank contribution is cancelled by a partition delta.
        let mut b = None;
        for candidate in 1..1u64 << 22 {
            let pb = PhysAddr(candidate << 10);
            if c.bank_of(pb) == c.bank_of(a) && c.row_of(pb) != c.row_of(a) {
                b = Some(pb);
                break;
            }
        }
        let b = b.expect("a conflicting address exists");
        assert!(c.conflicts(a, b));
        c.access(a);
        assert_eq!(c.access(b), RowOutcome::RowConflict);
    }

    #[test]
    fn same_row_never_conflicts() {
        let c = ch();
        let a = PhysAddr(0x2_0000);
        let b = PhysAddr(0x2_0000 + 128);
        assert!(!c.conflicts(a, b));
    }

    #[test]
    fn conflict_density_is_roughly_one_in_banks() {
        // Scanning forward from an address should find a bank conflict
        // within a few times `num_banks` partitions — this is what makes
        // Algo 1's linear scan cheap.
        let c = ch();
        let a = PhysAddr(0x40_0000);
        let mut hits = 0;
        let trials = 4096;
        for i in 1..=trials {
            if c.conflicts(a, PhysAddr(0x40_0000 + (i << 10))) {
                hits += 1;
            }
        }
        let expected = trials / c.num_banks() as u64;
        assert!(
            hits > expected / 4 && hits < expected * 4,
            "conflict density off: {hits} vs ~{expected}"
        );
    }

    #[test]
    fn precharge_clears_rows() {
        let mut c = ch();
        let a = PhysAddr(0x8000);
        c.access(a);
        c.precharge_all();
        assert_eq!(c.access(a), RowOutcome::RowEmpty);
    }
}
