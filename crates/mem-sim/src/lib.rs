//! # mem-sim — address-level GPU memory-hierarchy simulator
//!
//! The black-box device the reverse-engineering pipeline (paper §5) probes.
//! Models the observable memory behaviour of an NVIDIA GPU at per-access
//! granularity:
//!
//! * per-channel **L2 slices** (set-associative, noisy replacement — the
//!   black-box cache policy that defeats FGPU's approach, §3.2);
//! * per-channel **DRAM banks** with open-row buffers (bank conflicts
//!   serialize, §2.2);
//! * a **4 KiB-page MMU** with randomized physical backing and parsable
//!   page-table entries (§5.1);
//! * **P-chase** timing utilities and threshold calibration (ref [30]).
//!
//! The kernel-grain engine (`sgdrc-exec-sim`) is a separate, coarser model;
//! its contention coefficients are calibrated against micro-benchmarks run
//! on this simulator (see `crates/bench`).

pub mod device;
pub mod dram;
pub mod l2;
pub mod pchase;

pub use device::{AccessStats, GpuDevice};
pub use dram::{DramChannel, RowOutcome};
pub use l2::{L2Outcome, L2Slice};
pub use pchase::{build_chain, calibrate_thresholds, refresh_via_scan, run_chain, Thresholds};
