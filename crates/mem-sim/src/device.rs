//! The address-level GPU device: MMU + L2 slices + DRAM channels + storage.
//!
//! This is the black box the reverse-engineering pipeline probes. It exposes
//! exactly what real hardware exposes:
//!
//! * `malloc` / `free` — virtually contiguous allocations with randomized
//!   physical backing (`cuMemAlloc` behaviour, §5.1);
//! * `parse_page_table` — the PTE-parsing trick of paper ref [60] used to
//!   learn physical addresses;
//! * timed loads (`read_u64`, `timed_pair`) whose latencies reflect L2
//!   hits/misses, DRAM row conflicts and cache-policy noise.
//!
//! The ground-truth channel hash lives inside and is *never* exposed to the
//! probing code — tests that need it for verification fetch it from
//! `gpu_spec` directly and say so.

use crate::dram::{DramChannel, RowOutcome};
use crate::l2::{L2Outcome, L2Slice};
use gpu_spec::{ChannelHash, GpuModel, GpuSpec, MmuError, PageTable, PhysAddr, VirtAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Running access statistics (observable via profiling tools on real HW).
#[derive(Debug, Clone, Default)]
pub struct AccessStats {
    pub loads: u64,
    pub l2_hits: u64,
    pub l2_misses: u64,
    pub row_conflicts: u64,
    pub per_channel_accesses: Vec<u64>,
}

/// The simulated GPU memory subsystem.
pub struct GpuDevice {
    spec: GpuSpec,
    hash: Box<dyn ChannelHash>,
    l2: Vec<L2Slice>,
    dram: Vec<DramChannel>,
    page_table: PageTable,
    /// Sparse word storage keyed by 8-byte-aligned physical address.
    store: HashMap<u64, u64>,
    rng: StdRng,
    clock: u64,
    stats: AccessStats,
}

/// log2 of the DRAM row span in physical address space (128 KiB).
const ROW_SHIFT: u32 = 17;

impl GpuDevice {
    /// Creates a device for `model`, backing `sim_vram_bytes` of physical
    /// VRAM (a window of the real card's capacity — the hash mapping is
    /// identical across the whole space, so a window suffices for probing).
    pub fn new(model: GpuModel, sim_vram_bytes: u64, seed: u64) -> Self {
        let spec = model.spec();
        assert!(
            sim_vram_bytes <= spec.vram_bytes,
            "simulated window exceeds the card's VRAM"
        );
        let hash = model.channel_hash();
        let l2 = (0..spec.num_channels)
            .map(|_| {
                L2Slice::new(
                    spec.l2_sets_per_channel(),
                    spec.l2_ways,
                    spec.cache_noise_rate,
                )
            })
            .collect();
        let dram = (0..spec.num_channels)
            .map(|_| DramChannel::new(spec.dram_banks_per_channel, ROW_SHIFT))
            .collect();
        let stats = AccessStats {
            per_channel_accesses: vec![0; spec.num_channels as usize],
            ..Default::default()
        };
        Self {
            spec,
            hash,
            l2,
            dram,
            page_table: PageTable::new(sim_vram_bytes, seed),
            store: HashMap::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x5f5f_5f5f),
            clock: 0,
            stats,
        }
    }

    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Device clock in cycles; advances with every access.
    pub fn now(&self) -> u64 {
        self.clock
    }

    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    // -- driver-visible allocation API ------------------------------------

    /// Allocates `bytes` of device memory (virtually contiguous).
    pub fn malloc(&mut self, bytes: u64) -> Result<VirtAddr, MmuError> {
        self.page_table.alloc(bytes)
    }

    /// Frees a prior allocation.
    pub fn free(&mut self, va: VirtAddr, bytes: u64) -> Result<(), MmuError> {
        self.page_table.free(va, bytes)
    }

    /// Unallocated device memory in bytes.
    pub fn free_bytes(&self) -> u64 {
        self.page_table.free_frames() * gpu_spec::PAGE_BYTES
    }

    /// The PTE-parsing primitive of §5.1 (paper ref [60]).
    pub fn parse_page_table(
        &self,
        va: VirtAddr,
        bytes: u64,
    ) -> Result<Vec<(VirtAddr, PhysAddr)>, MmuError> {
        self.page_table.parse_entries(va, bytes)
    }

    /// Translates a virtual address (page walk; no timing side effects).
    pub fn translate(&self, va: VirtAddr) -> Result<PhysAddr, MmuError> {
        self.page_table.translate(va)
    }

    // -- timed memory operations ------------------------------------------

    /// Physical load returning its latency in cycles. Updates L2/DRAM state.
    pub fn access_phys(&mut self, pa: PhysAddr) -> u64 {
        let latency = self.access_inner(pa);
        self.clock += latency;
        latency
    }

    fn access_inner(&mut self, pa: PhysAddr) -> u64 {
        let ch = self.hash.channel_of(pa) as usize;
        self.stats.loads += 1;
        self.stats.per_channel_accesses[ch] += 1;
        let jitter = self.rng.gen_range(0..6);
        match self.l2[ch].access(gpu_spec::address::l2_set_key(pa.cacheline()), &mut self.rng) {
            L2Outcome::Hit => {
                self.stats.l2_hits += 1;
                self.spec.l2_hit_latency + jitter
            }
            L2Outcome::Miss(_) => {
                self.stats.l2_misses += 1;
                match self.dram[ch].access(pa) {
                    RowOutcome::RowHit | RowOutcome::RowEmpty => self.spec.dram_latency + jitter,
                    RowOutcome::RowConflict => {
                        self.stats.row_conflicts += 1;
                        self.spec.dram_latency + self.spec.bank_conflict_penalty + jitter
                    }
                }
            }
        }
    }

    /// Timed virtual load: returns `(value, latency_cycles)`.
    pub fn read_u64(&mut self, va: VirtAddr) -> Result<(u64, u64), MmuError> {
        let pa = self.page_table.translate(va)?;
        let lat = self.access_phys(pa);
        Ok((self.store.get(&(pa.0 & !7)).copied().unwrap_or(0), lat))
    }

    /// Timed virtual store.
    pub fn write_u64(&mut self, va: VirtAddr, value: u64) -> Result<u64, MmuError> {
        let pa = self.page_table.translate(va)?;
        let lat = self.access_phys(pa);
        self.store.insert(pa.0 & !7, value);
        Ok(lat)
    }

    /// Two loads issued concurrently by different warps (Algo 1's probe).
    ///
    /// Semantics: when both loads miss L2 and land on the same DRAM bank in
    /// different rows, they serialize and pay the activation penalty; on
    /// different channels (or banks) they proceed in parallel.
    pub fn timed_pair(&mut self, va0: VirtAddr, va1: VirtAddr) -> Result<u64, MmuError> {
        let pa0 = self.page_table.translate(va0)?;
        let pa1 = self.page_table.translate(va1)?;
        let ch0 = self.hash.channel_of(pa0) as usize;
        let ch1 = self.hash.channel_of(pa1) as usize;
        let bank_conflict = ch0 == ch1 && self.dram[ch0].conflicts(pa0, pa1);
        let l0 = self.access_inner(pa0);
        let l1 = self.access_inner(pa1);
        let both_missed = l0 >= self.spec.dram_latency && l1 >= self.spec.dram_latency;
        let mut elapsed = if bank_conflict && both_missed {
            // Sequential bank service + extra row thrash.
            l0 + l1 + self.spec.bank_conflict_penalty
        } else if ch0 == ch1 && both_missed {
            // Same channel: MSHR/queue overlap, mostly parallel.
            l0.max(l1) + 24
        } else {
            l0.max(l1)
        };
        // Black-box latency spikes (TLB walks, refresh, policy quirks).
        // The per-probe spike rate is two orders of magnitude below the
        // cache-policy noise rate; combined with the ~1% true-conflict
        // density of a linear scan this yields the ~1% (Pascal) / ~5%
        // (Ampere) false-positive fraction among *collected* conflict
        // samples that §3.2/§5.3 report.
        if self.rng.gen_bool(self.spec.cache_noise_rate * 0.01) {
            elapsed += self.spec.dram_latency + self.spec.bank_conflict_penalty;
        }
        self.clock += elapsed;
        Ok(elapsed)
    }

    // -- cache maintenance --------------------------------------------------

    /// Invalidates the entire L2 (models the `RefreshL2(v)` pointer-chase
    /// sweep of Algo 1 without paying millions of simulated loads; see
    /// `pchase::refresh_via_scan` for the faithful variant used in tests).
    pub fn flush_l2(&mut self) {
        for slice in &mut self.l2 {
            slice.flush();
        }
        for ch in &mut self.dram {
            ch.precharge_all();
        }
    }

    /// Whether the cacheline containing `va` is L2-resident (test-only
    /// introspection; not available on real hardware).
    pub fn probe_l2(&self, va: VirtAddr) -> Result<bool, MmuError> {
        let pa = self.page_table.translate(va)?;
        let ch = self.hash.channel_of(pa) as usize;
        Ok(self.l2[ch].probe(gpu_spec::address::l2_set_key(pa.cacheline())))
    }

    /// Ground-truth channel of a virtual address. **Verification only** —
    /// probing code must not call this.
    pub fn oracle_channel_of(&self, va: VirtAddr) -> Result<u16, MmuError> {
        let pa = self.page_table.translate(va)?;
        Ok(self.hash.channel_of(pa))
    }

    /// Ground-truth channel of a physical address (verification only).
    pub fn oracle_channel_of_phys(&self, pa: PhysAddr) -> u16 {
        self.hash.channel_of(pa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> GpuDevice {
        GpuDevice::new(GpuModel::RtxA2000, 64 << 20, 1)
    }

    #[test]
    fn miss_then_hit_latency_gap() {
        let mut d = device();
        let va = d.malloc(4096).unwrap();
        let (_, miss) = d.read_u64(va).unwrap();
        let (_, hit) = d.read_u64(va).unwrap();
        assert!(miss > hit + 100, "miss {miss} vs hit {hit}");
    }

    #[test]
    fn store_load_roundtrip() {
        let mut d = device();
        let va = d.malloc(4096).unwrap();
        d.write_u64(va.offset(128), 0xDEAD_BEEF).unwrap();
        let (v, _) = d.read_u64(va.offset(128)).unwrap();
        assert_eq!(v, 0xDEAD_BEEF);
    }

    #[test]
    fn flush_forces_misses() {
        let mut d = device();
        let va = d.malloc(4096).unwrap();
        d.read_u64(va).unwrap();
        d.flush_l2();
        let (_, lat) = d.read_u64(va).unwrap();
        assert!(lat >= d.spec().dram_latency);
    }

    #[test]
    fn clock_advances_with_accesses() {
        let mut d = device();
        let va = d.malloc(4096).unwrap();
        let t0 = d.now();
        d.read_u64(va).unwrap();
        assert!(d.now() > t0);
    }

    #[test]
    fn timed_pair_detects_bank_conflicts() {
        // Find two VAs whose PAs conflict (same channel+bank, diff rows)
        // using the oracle, then check the latency signal Algo 1 relies on.
        let mut d = GpuDevice::new(GpuModel::TeslaP40, 64 << 20, 7);
        let bytes = 16 << 20;
        let va = d.malloc(bytes).unwrap();
        let entries = d.parse_page_table(va, bytes).unwrap();
        let base_va = entries[0].0;
        let base_pa = entries[0].1;
        let base_ch = d.oracle_channel_of_phys(base_pa);
        let dram_probe = DramChannel::new(d.spec().dram_banks_per_channel, ROW_SHIFT);

        let mut conflicting = None;
        let mut non_conflicting = None;
        for (cva, cpa) in entries.iter().skip(1) {
            let same_ch = d.oracle_channel_of_phys(*cpa) == base_ch;
            if same_ch && dram_probe.conflicts(base_pa, *cpa) && conflicting.is_none() {
                conflicting = Some(*cva);
            }
            if !same_ch && non_conflicting.is_none() {
                non_conflicting = Some(*cva);
            }
            if conflicting.is_some() && non_conflicting.is_some() {
                break;
            }
        }
        let (cva, nva) = (conflicting.unwrap(), non_conflicting.unwrap());

        let mut lat_conflict = Vec::new();
        let mut lat_clean = Vec::new();
        for _ in 0..16 {
            d.flush_l2();
            lat_conflict.push(d.timed_pair(base_va, cva).unwrap());
            d.flush_l2();
            lat_clean.push(d.timed_pair(base_va, nva).unwrap());
        }
        let avg = |v: &[u64]| v.iter().sum::<u64>() / v.len() as u64;
        assert!(
            avg(&lat_conflict) > avg(&lat_clean) + d.spec().bank_conflict_penalty,
            "conflict {} vs clean {}",
            avg(&lat_conflict),
            avg(&lat_clean)
        );
    }

    #[test]
    fn channel_accesses_are_balanced() {
        // Streaming a large buffer must hit all channels roughly equally —
        // the uniformity property the hash guarantees (§2.1).
        let mut d = device();
        let bytes = 8 << 20;
        let va = d.malloc(bytes).unwrap();
        let mut off = 0;
        while off < bytes {
            d.read_u64(va.offset(off)).unwrap();
            off += 128;
        }
        let counts = &d.stats().per_channel_accesses;
        let total: u64 = counts.iter().sum();
        let expect = total / counts.len() as u64;
        for (ch, &c) in counts.iter().enumerate() {
            assert!(
                c > expect * 9 / 10 && c < expect * 11 / 10,
                "channel {ch}: {c} vs ~{expect}"
            );
        }
    }

    #[test]
    fn oracle_matches_spec_channel_range() {
        let mut d = device();
        let va = d.malloc(1 << 20).unwrap();
        for off in (0..(1 << 20)).step_by(1024) {
            let ch = d.oracle_channel_of(va.offset(off)).unwrap();
            assert!(ch < d.spec().num_channels);
        }
    }
}
