//! Set-associative L2 cache slices with noisy replacement.
//!
//! Each VRAM channel owns one L2 slice (paper §2.1: a GDDR unit "maps to a
//! set of L2 cache"). Replacement is LRU, perturbed by the black-box cache
//! policy noise that makes FGPU's reverse engineering brittle (§3.2): with
//! probability `noise_rate` a fill evicts a random way instead of the LRU
//! way. Pascal exhibits ~1% noisy samples, Ampere ~5%.

use rand::Rng;

/// Result of an L2 lookup-and-fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Outcome {
    Hit,
    /// Miss; the line was filled (the evicted tag, if any, is returned).
    Miss(Option<u64>),
}

/// One L2 slice: `sets × ways` cachelines, MRU-ordered per set.
#[derive(Debug, Clone)]
pub struct L2Slice {
    /// `sets[s]` holds up to `ways` tags, most-recently-used first.
    sets: Vec<Vec<u64>>,
    ways: usize,
    set_mask: u64,
    noise_rate: f64,
}

impl L2Slice {
    /// Creates a slice with `sets` sets (power of two) and `ways` ways.
    pub fn new(sets: u64, ways: u32, noise_rate: f64) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            sets: (0..sets)
                .map(|_| Vec::with_capacity(ways as usize))
                .collect(),
            ways: ways as usize,
            set_mask: sets - 1,
            noise_rate,
        }
    }

    /// Set index for a cacheline index (simple modulo mapping; the channel
    /// hash has already distributed lines over slices).
    #[inline]
    pub fn set_of(&self, cacheline: u64) -> usize {
        (cacheline & self.set_mask) as usize
    }

    /// Looks up `cacheline` (a global cacheline index); fills on miss.
    pub fn access(&mut self, cacheline: u64, rng: &mut impl Rng) -> L2Outcome {
        let set_idx = self.set_of(cacheline);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == cacheline) {
            // Promote to MRU.
            let t = set.remove(pos);
            set.insert(0, t);
            return L2Outcome::Hit;
        }
        let evicted = if set.len() == self.ways {
            // Black-box replacement: mostly LRU, occasionally random.
            let victim = if rng.gen_bool(self.noise_rate) {
                rng.gen_range(0..set.len())
            } else {
                set.len() - 1
            };
            Some(set.remove(victim))
        } else {
            None
        };
        set.insert(0, cacheline);
        L2Outcome::Miss(evicted)
    }

    /// Whether `cacheline` is currently resident (no state change).
    pub fn probe(&self, cacheline: u64) -> bool {
        self.sets[self.set_of(cacheline)].contains(&cacheline)
    }

    /// Invalidates the whole slice.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of resident lines (for occupancy assertions in tests).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    pub fn ways(&self) -> usize {
        self.ways
    }

    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn hit_after_fill() {
        let mut l2 = L2Slice::new(16, 4, 0.0);
        let mut r = rng();
        assert!(matches!(l2.access(100, &mut r), L2Outcome::Miss(None)));
        assert_eq!(l2.access(100, &mut r), L2Outcome::Hit);
    }

    #[test]
    fn lru_eviction_order_is_deterministic_without_noise() {
        let mut l2 = L2Slice::new(1, 4, 0.0);
        let mut r = rng();
        for t in 0..4 {
            l2.access(t, &mut r);
        }
        // Touch 0 to make it MRU; 1 becomes LRU.
        l2.access(0, &mut r);
        match l2.access(99, &mut r) {
            L2Outcome::Miss(Some(victim)) => assert_eq!(victim, 1),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn exactly_ways_lines_per_set() {
        let mut l2 = L2Slice::new(1, 8, 0.0);
        let mut r = rng();
        for t in 0..100 {
            l2.access(t, &mut r);
        }
        assert_eq!(l2.resident_lines(), 8);
    }

    #[test]
    fn conflict_eviction_needs_ways_distinct_lines() {
        // The invariant Algo 2's binary search relies on: an address is
        // evicted iff ≥ `ways` other lines in its set are accessed.
        let mut l2 = L2Slice::new(64, 16, 0.0);
        let mut r = rng();
        l2.access(0, &mut r);
        // 15 conflicting lines (same set: stride = num_sets): not enough.
        for i in 1..16u64 {
            l2.access(i * 64, &mut r);
        }
        assert!(l2.probe(0));
        // The 16th conflicting line evicts it.
        l2.access(16 * 64, &mut r);
        assert!(!l2.probe(0));
    }

    #[test]
    fn noise_occasionally_breaks_lru() {
        let mut l2 = L2Slice::new(1, 16, 0.3);
        let mut r = rng();
        let mut non_lru_evictions = 0;
        for trial in 0..200u64 {
            l2.flush();
            for t in 0..16 {
                l2.access(trial * 1000 + t, &mut r);
            }
            // Next fill should evict the oldest (trial*1000) under pure LRU.
            if let L2Outcome::Miss(Some(v)) = l2.access(trial * 1000 + 999, &mut r) {
                if v != trial * 1000 {
                    non_lru_evictions += 1;
                }
            }
        }
        assert!(
            non_lru_evictions > 20,
            "expected noisy replacement, saw {non_lru_evictions}/200"
        );
    }

    #[test]
    fn flush_empties_slice() {
        let mut l2 = L2Slice::new(8, 4, 0.0);
        let mut r = rng();
        for t in 0..32 {
            l2.access(t, &mut r);
        }
        l2.flush();
        assert_eq!(l2.resident_lines(), 0);
        assert!(!l2.probe(0));
    }
}
