//! GPU pointer-chase (P-chase) utilities and latency-threshold calibration.
//!
//! The paper's probing algorithms (Algo 1–3) are built on the P-chase
//! micro-benchmark of Mei & Chu (paper ref [30]): an array whose elements
//! store the index of the next element to visit, defeating prefetchers and
//! exposing per-access latency. This module provides chain construction,
//! chain traversal, an L2 refresh sweep, and the micro-benchmark that
//! derives the L2-miss and bank-conflict latency thresholds the probing
//! code compares against.

use crate::device::GpuDevice;
use gpu_spec::{MmuError, VirtAddr, CACHELINE_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Latency thresholds calibrated on the live device (§5.1: "determined by
/// micro-benchmarking").
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// A single load slower than this is an L2 miss.
    pub l2_miss: u64,
    /// A concurrent pair slower than this indicates a DRAM bank conflict.
    pub bank_conflict: u64,
}

/// Writes a pointer chain through `slots`: each slot stores the address of
/// the next, and the last points back to the first.
pub fn build_chain(dev: &mut GpuDevice, slots: &[VirtAddr]) -> Result<(), MmuError> {
    for (i, &slot) in slots.iter().enumerate() {
        let next = slots[(i + 1) % slots.len()];
        dev.write_u64(slot, next.0)?;
    }
    Ok(())
}

/// Follows a pointer chain for `steps` hops; returns total latency.
pub fn run_chain(dev: &mut GpuDevice, start: VirtAddr, steps: usize) -> Result<u64, MmuError> {
    let mut cursor = start;
    let mut total = 0;
    for _ in 0..steps {
        let (next, lat) = dev.read_u64(cursor)?;
        total += lat;
        cursor = VirtAddr(next);
    }
    Ok(total)
}

/// The faithful `RefreshL2(v)` of Algo 1: stream a buffer of at least twice
/// the L2 capacity at cacheline stride, evicting the previous contents.
/// (`GpuDevice::flush_l2` is the fast equivalent the probing algorithms use
/// to keep simulation costs bounded; `tests::scan_refresh_matches_flush`
/// verifies the two agree.)
pub fn refresh_via_scan(dev: &mut GpuDevice, va: VirtAddr, bytes: u64) -> Result<(), MmuError> {
    let mut off = 0;
    while off < bytes {
        dev.read_u64(va.offset(off))?;
        off += CACHELINE_BYTES;
    }
    Ok(())
}

/// Calibrates the L2-miss and bank-conflict thresholds with random probes —
/// no oracle involved.
pub fn calibrate_thresholds(dev: &mut GpuDevice, seed: u64) -> Result<Thresholds, MmuError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bytes: u64 = 4 << 20;
    let va = dev.malloc(bytes)?;

    // Hit / miss latencies for single loads.
    let mut hits = Vec::new();
    let mut misses = Vec::new();
    for _ in 0..64 {
        let probe = va.offset((rng.gen_range(0..bytes / 128)) * 128);
        dev.flush_l2();
        let (_, miss) = dev.read_u64(probe)?;
        let (_, hit) = dev.read_u64(probe)?;
        misses.push(miss);
        hits.push(hit);
    }
    hits.sort_unstable();
    misses.sort_unstable();
    let hit_p90 = hits[hits.len() * 9 / 10];
    let miss_p10 = misses[misses.len() / 10];
    let l2_miss = (hit_p90 + miss_p10) / 2;

    // Pair latencies: the population is bimodal (rare bank conflicts are
    // much slower). Take the largest gap above the median as the boundary.
    let mut pairs = Vec::new();
    for _ in 0..512 {
        let a = va.offset((rng.gen_range(0..bytes / 1024)) * 1024);
        let b = va.offset((rng.gen_range(0..bytes / 1024)) * 1024);
        dev.flush_l2();
        pairs.push(dev.timed_pair(a, b)?);
    }
    pairs.sort_unstable();
    let median = pairs[pairs.len() / 2];
    let mut best_gap = 0;
    let mut boundary = median * 3 / 2;
    for w in pairs.windows(2) {
        if w[0] >= median && w[1] - w[0] > best_gap {
            best_gap = w[1] - w[0];
            boundary = w[0] + (w[1] - w[0]) / 2;
        }
    }
    dev.free(va, bytes)?;
    Ok(Thresholds {
        l2_miss,
        bank_conflict: boundary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::GpuModel;

    fn device() -> GpuDevice {
        GpuDevice::new(GpuModel::RtxA2000, 64 << 20, 11)
    }

    #[test]
    fn chain_traversal_follows_pointers() {
        let mut d = device();
        let va = d.malloc(1 << 16).unwrap();
        let slots: Vec<VirtAddr> = (0..32).map(|i| va.offset(i * 1024)).collect();
        build_chain(&mut d, &slots).unwrap();
        // After one full loop the cursor is back at start.
        let mut cursor = slots[0];
        for _ in 0..32 {
            let (next, _) = d.read_u64(cursor).unwrap();
            cursor = VirtAddr(next);
        }
        assert_eq!(cursor, slots[0]);
    }

    #[test]
    fn second_chain_pass_is_faster() {
        let mut d = device();
        let va = d.malloc(1 << 16).unwrap();
        let slots: Vec<VirtAddr> = (0..64).map(|i| va.offset(i * 128)).collect();
        build_chain(&mut d, &slots).unwrap();
        d.flush_l2();
        let cold = run_chain(&mut d, slots[0], 64).unwrap();
        let warm = run_chain(&mut d, slots[0], 64).unwrap();
        assert!(warm * 3 < cold * 2, "warm {warm} vs cold {cold}");
    }

    #[test]
    fn scan_refresh_matches_flush() {
        let mut d = device();
        let target = d.malloc(4096).unwrap();
        let sweep_bytes = 2 * d.spec().l2_total_bytes();
        let sweep = d.malloc(sweep_bytes).unwrap();

        // Warm the target, then evict via the faithful scan.
        d.read_u64(target).unwrap();
        assert!(d.probe_l2(target).unwrap());
        refresh_via_scan(&mut d, sweep, sweep_bytes).unwrap();
        assert!(
            !d.probe_l2(target).unwrap(),
            "a 2x-capacity scan must evict the target line"
        );
    }

    #[test]
    fn calibrated_thresholds_separate_populations() {
        let mut d = device();
        let th = calibrate_thresholds(&mut d, 3).unwrap();
        assert!(th.l2_miss > d.spec().l2_hit_latency);
        assert!(th.l2_miss < d.spec().dram_latency);
        // Bank conflicts serialize two DRAM accesses; clean pairs are ~one
        // DRAM access. The boundary must sit between those populations.
        assert!(th.bank_conflict > d.spec().dram_latency);
        assert!(
            th.bank_conflict < 2 * (d.spec().dram_latency + d.spec().bank_conflict_penalty),
            "boundary {} too high",
            th.bank_conflict
        );
    }
}
