//! The kernel performance model shared by the execution engine, the
//! offline profiler and the benchmarks.
//!
//! A kernel's runtime on a given GPU is a roofline with resource scaling:
//!
//! ```text
//! t = launch + max( compute_time / sm_scale(tpcs),  memory_time / bw_share )
//! ```
//!
//! * `sm_scale` saturates at the kernel's block-level parallelism — giving
//!   a kernel more TPCs than it can fill does not speed it up, which is
//!   exactly why SGDRC's min-SM search (§7.1) finds small allocations for
//!   most LS kernels;
//! * `bw_share` is the fraction of its achievable DRAM bandwidth the
//!   kernel actually receives (reduced under channel sharing);
//! * an `intra_sm_factor ≥ 1` models co-resident kernel interference
//!   (Fig. 3a) and the hardware-scheduler penalty for non-persistent
//!   kernels (§7.1).

use crate::kernel::KernelDesc;
use gpu_spec::GpuSpec;

/// Fixed kernel-launch overhead in microseconds.
pub const LAUNCH_OVERHEAD_US: f64 = 4.0;

/// Resource context for a runtime query.
#[derive(Debug, Clone, Copy)]
pub struct ResourceCtx {
    /// Effective TPCs available to the kernel (via TMD masking; fractional
    /// when SMs are time-shared or thread-sliced).
    pub tpcs: f64,
    /// Fraction of the kernel's achievable DRAM bandwidth it receives.
    pub bw_share: f64,
    /// Multiplicative intra-SM interference factor (1.0 = alone).
    pub intra_sm_factor: f64,
}

impl ResourceCtx {
    /// Full GPU, no interference.
    pub fn exclusive(spec: &GpuSpec) -> Self {
        Self {
            tpcs: spec.num_tpcs as f64,
            bw_share: 1.0,
            intra_sm_factor: 1.0,
        }
    }
}

/// Pure compute time at full SM allocation, in µs.
pub fn compute_time_us(k: &KernelDesc, spec: &GpuSpec) -> f64 {
    let peak = spec.fp32_tflops * 1e12 * k.kind.compute_efficiency();
    k.flops / peak * 1e6
}

/// Pure memory time at full bandwidth, in µs.
pub fn memory_time_us(k: &KernelDesc, spec: &GpuSpec) -> f64 {
    let bw = spec.mem_bandwidth_gbps * 1e9 * k.kind.bandwidth_efficiency();
    k.bytes / bw * 1e6
}

/// SM scaling factor: how much of its full-GPU compute rate the kernel
/// retains on `tpcs` TPCs.
pub fn sm_scale(k: &KernelDesc, spec: &GpuSpec, tpcs: f64) -> f64 {
    let tpcs = tpcs.clamp(0.05, spec.num_tpcs as f64);
    let saturation = k.saturation_tpcs(spec) as f64;
    // Usable TPCs are capped by the kernel's own parallelism.
    tpcs.min(saturation) / saturation
}

/// Kernel runtime in µs under a resource context.
pub fn runtime_us(k: &KernelDesc, spec: &GpuSpec, ctx: ResourceCtx) -> f64 {
    let scale = sm_scale(k, spec, ctx.tpcs);
    let compute = compute_time_us(k, spec) / scale.max(1e-9);
    // Memory throughput also degrades when very few SMs issue requests
    // (fewer outstanding misses): cap bandwidth by an SM-side MLP limit.
    let mlp_limit = (ctx.tpcs / spec.num_tpcs as f64 * 3.0).min(1.0);
    let memory = memory_time_us(k, spec) / (ctx.bw_share.min(mlp_limit)).max(1e-9);
    let coloring_overhead = if k.colored {
        1.0 + coloring::runtime_overhead_fraction(k.memory_instr_share())
    } else {
        1.0
    };
    let sched_penalty = if k.persistent_threads || k.thread_blocks <= 64 {
        1.0
    } else {
        1.0 + spec.contention.sched_conflict
    };
    LAUNCH_OVERHEAD_US
        + compute.max(memory) * ctx.intra_sm_factor * coloring_overhead * sched_penalty
}

/// Isolated runtime at full resources.
pub fn isolated_runtime_us(k: &KernelDesc, spec: &GpuSpec) -> f64 {
    runtime_us(k, spec, ResourceCtx::exclusive(spec))
}

/// Precomputed per-kernel performance invariants.
///
/// Everything [`runtime_us`] derives from the kernel descriptor alone
/// (× the GPU spec), captured once so the execution engine's hot path
/// re-evaluates a kernel's rate without touching the descriptor or the
/// `perf::` derivations again: pure compute/memory time, the isolated
/// runtime, block-parallelism saturation, the static coloring/scheduler
/// multipliers, and the contention-model inputs (full-resource DRAM
/// bandwidth demand, thrash intensity, memory-instruction share).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelPerfInvariants {
    /// Pure compute time at full SM allocation, µs.
    pub compute_us: f64,
    /// Pure memory time at full bandwidth, µs.
    pub memory_us: f64,
    /// [`isolated_runtime_us`] of the kernel.
    pub isolated_us: f64,
    /// TPCs beyond which extra SMs cannot help (block parallelism).
    pub saturation_tpcs: f64,
    /// Static multiplier: coloring overhead × hardware-scheduler penalty.
    pub static_factor: f64,
    /// DRAM bandwidth demand at full resources, GB/s.
    pub bw_demand_gbps: f64,
    /// `bw_demand` relative to the whole GPU, clamped to 0..1.
    pub thrash_intensity: f64,
    /// Share of issued instructions touching global memory.
    pub memory_instr_share: f64,
    /// `1 / bw_demand_gbps` (0 when the kernel demands no bandwidth) —
    /// turns the contention model's per-evaluation bandwidth-share
    /// division into a multiply.
    pub inv_bw_demand_gbps: f64,
    /// Cached `spec.num_tpcs` (f64) for the MLP bandwidth limit.
    num_tpcs: f64,
    /// `compute_us × saturation_tpcs`: folds the SM-scale division
    /// (`compute_us / (tpcs/sat)`) into a single divide per evaluation.
    compute_scaled: f64,
    /// `3 / num_tpcs`: the MLP limit's slope, precomputed.
    mlp_per_tpc: f64,
}

impl KernelPerfInvariants {
    pub fn new(k: &KernelDesc, spec: &GpuSpec) -> Self {
        let compute_us = compute_time_us(k, spec);
        let memory_us = memory_time_us(k, spec);
        let coloring_overhead = if k.colored {
            1.0 + coloring::runtime_overhead_fraction(k.memory_instr_share())
        } else {
            1.0
        };
        let sched_penalty = if k.persistent_threads || k.thread_blocks <= 64 {
            1.0
        } else {
            1.0 + spec.contention.sched_conflict
        };
        let body = memory_us.max(compute_us).max(1e-9);
        let bw_demand_gbps = k.bytes / (body * 1e-6) / 1e9;
        let saturation_tpcs = k.saturation_tpcs(spec) as f64;
        let num_tpcs = spec.num_tpcs as f64;
        Self {
            compute_us,
            memory_us,
            isolated_us: isolated_runtime_us(k, spec),
            saturation_tpcs,
            static_factor: coloring_overhead * sched_penalty,
            bw_demand_gbps,
            thrash_intensity: (bw_demand_gbps / spec.mem_bandwidth_gbps).min(1.0),
            memory_instr_share: k.memory_instr_share(),
            inv_bw_demand_gbps: if bw_demand_gbps > 0.0 {
                1.0 / bw_demand_gbps
            } else {
                0.0
            },
            num_tpcs,
            compute_scaled: compute_us * saturation_tpcs,
            mlp_per_tpc: 3.0 / num_tpcs,
        }
    }

    /// Kernel runtime under a resource context — same roofline as
    /// [`runtime_us`] (equal up to float associativity in the scale
    /// terms), with every descriptor-derived term served from the
    /// precomputed block and the invariant divisions pre-folded.
    pub fn runtime_us(&self, ctx: ResourceCtx) -> f64 {
        let tpcs = ctx.tpcs.clamp(0.05, self.num_tpcs);
        // compute_us / (tpcs.min(sat)/sat), with the numerator prefolded;
        // the clamped tpcs keep the denominator strictly positive.
        let compute = self.compute_scaled / tpcs.min(self.saturation_tpcs);
        let mlp_limit = (ctx.tpcs * self.mlp_per_tpc).min(1.0);
        let memory = self.memory_us / (ctx.bw_share.min(mlp_limit)).max(1e-9);
        LAUNCH_OVERHEAD_US + compute.max(memory) * ctx.intra_sm_factor * self.static_factor
    }
}

/// Average DRAM bandwidth demand while running, in GB/s.
pub fn bandwidth_demand_gbps(k: &KernelDesc, spec: &GpuSpec, ctx: ResourceCtx) -> f64 {
    let t = runtime_us(k, spec, ctx) - LAUNCH_OVERHEAD_US;
    if t <= 0.0 {
        return 0.0;
    }
    k.bytes / (t * 1e-6) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelDesc, KernelKind};
    use gpu_spec::GpuModel;

    fn gemm(flops: f64, bytes: f64, blocks: u32) -> KernelDesc {
        KernelDesc {
            id: 9,
            name: "gemm".into(),
            kind: KernelKind::Gemm,
            flops,
            bytes,
            thread_blocks: blocks,
            persistent_threads: true,
            colored: false,
            extra_registers: 0,
            tensor_refs: vec![],
        }
    }

    #[test]
    fn more_tpcs_never_slower() {
        let spec = GpuModel::RtxA2000.spec();
        let k = gemm(5e9, 2e7, 512);
        let mut prev = f64::INFINITY;
        for tpcs in 1..=spec.num_tpcs {
            let t = runtime_us(
                &k,
                &spec,
                ResourceCtx {
                    tpcs: tpcs as f64,
                    bw_share: 1.0,
                    intra_sm_factor: 1.0,
                },
            );
            assert!(t <= prev + 1e-9, "tpcs {tpcs}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn runtime_saturates_at_block_parallelism() {
        let spec = GpuModel::RtxA2000.spec();
        let k = gemm(5e9, 2e7, 16); // saturates at 2 TPCs
        let t2 = runtime_us(
            &k,
            &spec,
            ResourceCtx {
                tpcs: 2.0,
                bw_share: 1.0,
                intra_sm_factor: 1.0,
            },
        );
        let t13 = runtime_us(
            &k,
            &spec,
            ResourceCtx {
                tpcs: 13.0,
                bw_share: 1.0,
                intra_sm_factor: 1.0,
            },
        );
        assert!(
            (t2 - t13).abs() < 1e-6,
            "extra TPCs beyond saturation are useless"
        );
    }

    #[test]
    fn memory_bound_kernels_track_bandwidth_share() {
        let spec = GpuModel::RtxA2000.spec();
        let k = KernelDesc {
            kind: KernelKind::Elementwise,
            ..gemm(1e6, 5e7, 512)
        };
        let full = runtime_us(&k, &spec, ResourceCtx::exclusive(&spec));
        let third = runtime_us(
            &k,
            &spec,
            ResourceCtx {
                tpcs: 13.0,
                bw_share: 1.0 / 3.0,
                intra_sm_factor: 1.0,
            },
        );
        let body_full = full - LAUNCH_OVERHEAD_US;
        let body_third = third - LAUNCH_OVERHEAD_US;
        assert!(
            (body_third / body_full - 3.0).abs() < 0.05,
            "{body_third} vs {body_full}"
        );
    }

    #[test]
    fn intra_sm_factor_scales_runtime() {
        let spec = GpuModel::TeslaP40.spec();
        let k = gemm(5e9, 2e7, 512);
        let alone = runtime_us(&k, &spec, ResourceCtx::exclusive(&spec));
        let shared = runtime_us(
            &k,
            &spec,
            ResourceCtx {
                tpcs: spec.num_tpcs as f64,
                bw_share: 1.0,
                intra_sm_factor: 1.4,
            },
        );
        assert!(shared > alone * 1.3);
    }

    #[test]
    fn coloring_overhead_is_small() {
        let spec = GpuModel::RtxA2000.spec();
        let mut k = gemm(5e9, 2e7, 512);
        let plain = isolated_runtime_us(&k, &spec);
        k.colored = true;
        let colored = isolated_runtime_us(&k, &spec);
        let overhead = colored / plain - 1.0;
        assert!(overhead > 0.0 && overhead < 0.04, "overhead {overhead}");
    }

    #[test]
    fn realistic_kernel_durations() {
        // A 224×224 ResNet conv layer should land in the 10–500 µs range.
        let spec = GpuModel::TeslaP40.spec();
        let k = gemm(231e6 * 2.0, 6e6, 392);
        let t = isolated_runtime_us(&k, &spec);
        assert!(t > 5.0 && t < 500.0, "runtime {t}");
    }

    #[test]
    fn invariants_match_direct_derivation() {
        // The precomputed block must agree with the straight-line
        // `runtime_us` across kernel shapes and resource contexts — the
        // execution engine's hot path relies on it.
        let spec = GpuModel::RtxA2000.spec();
        let kernels = [
            gemm(5e9, 2e7, 512),
            gemm(1e6, 5e7, 16),
            KernelDesc {
                kind: KernelKind::Elementwise,
                persistent_threads: false,
                thread_blocks: 512,
                ..gemm(1e6, 5e7, 512)
            },
            KernelDesc {
                colored: true,
                ..gemm(2e9, 1e7, 128)
            },
        ];
        for k in &kernels {
            let inv = KernelPerfInvariants::new(k, &spec);
            assert_eq!(inv.isolated_us, isolated_runtime_us(k, &spec));
            for tpcs in [0.5, 1.0, 3.7, 13.0] {
                for bw_share in [1.0, 0.4, 1e-3] {
                    for intra in [1.0, 1.6] {
                        let ctx = ResourceCtx {
                            tpcs,
                            bw_share,
                            intra_sm_factor: intra,
                        };
                        let direct = runtime_us(k, &spec, ctx);
                        let fast = inv.runtime_us(ctx);
                        assert!(
                            (fast - direct).abs() / direct < 1e-12,
                            "{}: {fast} vs {direct} at {ctx:?}",
                            k.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn few_tpcs_limit_memory_parallelism() {
        let spec = GpuModel::RtxA2000.spec();
        let k = KernelDesc {
            kind: KernelKind::Elementwise,
            ..gemm(1e6, 5e7, 512)
        };
        let one = runtime_us(
            &k,
            &spec,
            ResourceCtx {
                tpcs: 1.0,
                bw_share: 1.0,
                intra_sm_factor: 1.0,
            },
        );
        let all = runtime_us(
            &k,
            &spec,
            ResourceCtx {
                tpcs: 13.0,
                bw_share: 1.0,
                intra_sm_factor: 1.0,
            },
        );
        assert!(
            one > all * 2.0,
            "a single TPC cannot sustain full bandwidth"
        );
    }
}
