//! Compiler passes over the model zoo (paper §4 offline phase).
//!
//! SGDRC's offline phase takes user models, fuses and compiles operators
//! (via TVM/Ansor in the paper), "then transforms the CUDA kernels to
//! enable VRAM channel dynamic allocation". The passes here mirror that
//! pipeline on kernel descriptors:
//!
//! * [`fuse_elementwise`] — epilogue fusion of elementwise/normalization
//!   kernels into their producers (what TVM does);
//! * [`to_persistent_threads`] — the §7.1 transformation of large-grid
//!   kernels into the persistent-thread style (reduces hardware-scheduler
//!   conflicts, bounds thread blocks);
//! * [`classify_memory_bound`] — the offline profiling step that marks
//!   memory-bound kernels and the tensors they access (§6, §7.2);
//! * [`apply_coloring`] — the §6 kernel transformer: array re-indexing,
//!   extra registers (Fig. 15b) and the runtime overhead model.

use crate::kernel::{KernelDesc, KernelKind};
use crate::perf;
use crate::zoo::Model;
use gpu_spec::GpuSpec;

/// Which passes to run in [`compile`].
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    pub fuse: bool,
    pub persistent_threads: bool,
    /// Apply the coloring transform to memory-bound kernels (§6).
    pub coloring: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            fuse: true,
            persistent_threads: true,
            coloring: true,
        }
    }
}

/// Epilogue fusion: merges `Elementwise`/`Norm` kernels into the preceding
/// producer kernel when they directly consume its output. Returns the
/// number of kernels eliminated.
pub fn fuse_elementwise(model: &mut Model) -> usize {
    let mut fused = 0usize;
    let mut new_kernels: Vec<KernelDesc> = Vec::with_capacity(model.kernels.len());
    // old kernel index → new kernel index.
    let mut remap: Vec<usize> = Vec::with_capacity(model.kernels.len());

    for k in model.kernels.drain(..) {
        let fusable = matches!(k.kind, KernelKind::Elementwise | KernelKind::Norm);
        let consumes_prev = new_kernels.last().is_some_and(|prev: &KernelDesc| {
            let prev_out = prev.tensor_refs.last().copied();
            prev_out.is_some_and(|out| k.tensor_refs.contains(&out))
        });
        if fusable && consumes_prev {
            let prev = new_kernels.last_mut().expect("checked above");
            let prev_out = *prev.tensor_refs.last().expect("ops always have outputs");
            // The producer's output is no longer materialized in DRAM: its
            // write (producer) and read (epilogue) both disappear.
            let saved = model.tensors[prev_out].bytes as f64;
            prev.flops += k.flops;
            prev.bytes = (prev.bytes + k.bytes - 2.0 * saved).max(prev.bytes * 0.5);
            model.tensors[prev_out].bytes = 0;
            model.tensors[prev_out].name.push_str(" (fused)");
            // The epilogue's inputs/outputs now belong to the producer.
            for &t in &k.tensor_refs {
                if !prev.tensor_refs.contains(&t) {
                    prev.tensor_refs.push(t);
                }
            }
            remap.push(new_kernels.len() - 1);
            fused += 1;
        } else {
            remap.push(new_kernels.len());
            new_kernels.push(k);
        }
    }
    model.kernels = new_kernels;
    for t in &mut model.tensors {
        t.first_use = remap[t.first_use];
        t.last_use = remap[t.last_use];
    }
    fused
}

/// §7.1: kernels with large grids become persistent-thread kernels whose
/// block count matches the hardware's residency.
pub fn to_persistent_threads(model: &mut Model, spec: &GpuSpec) -> usize {
    let resident_blocks = spec.num_sms() * 4;
    let mut transformed = 0;
    for k in &mut model.kernels {
        if k.thread_blocks > resident_blocks {
            k.thread_blocks = resident_blocks;
            k.persistent_threads = true;
            transformed += 1;
        }
    }
    transformed
}

/// Marks tensors accessed by memory-bound kernels (§6: "memory-bound
/// tensors are identified through offline profiling").
pub fn classify_memory_bound(model: &mut Model, spec: &GpuSpec) -> usize {
    let mut marked = 0;
    for k in &model.kernels {
        if k.is_memory_bound(spec) {
            for &t in &k.tensor_refs {
                if !model.tensors[t].memory_bound {
                    model.tensors[t].memory_bound = true;
                    marked += 1;
                }
            }
        }
    }
    marked
}

/// §6 kernel transformer: applies the shadow-page-table re-indexing to the
/// selected kernels, assigning the Fig. 15b register cost. When
/// `only_memory_bound` is set (the production configuration), non-memory-
/// bound kernels are left untouched — their tensors aren't colored.
pub fn apply_coloring(model: &mut Model, spec: &GpuSpec, only_memory_bound: bool) -> usize {
    let mut transformed = 0;
    for k in &mut model.kernels {
        if only_memory_bound && !k.is_memory_bound(spec) {
            continue;
        }
        if !k.colored {
            k.colored = true;
            let runtime = perf::isolated_runtime_us(k, spec);
            k.extra_registers = coloring::extra_registers(k.id, runtime);
            transformed += 1;
        }
    }
    transformed
}

/// The full offline pipeline for one model on one GPU.
pub fn compile(mut model: Model, spec: &GpuSpec, opts: CompileOptions) -> Model {
    if opts.fuse {
        fuse_elementwise(&mut model);
    }
    if opts.persistent_threads {
        to_persistent_threads(&mut model, spec);
    }
    classify_memory_bound(&mut model, spec);
    if opts.coloring {
        apply_coloring(&mut model, spec, true);
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{build, ModelId};
    use gpu_spec::GpuModel;

    #[test]
    fn fusion_eliminates_elementwise_kernels() {
        let mut m = build(ModelId::ResNet34);
        let before = m.kernels.len();
        let fused = fuse_elementwise(&mut m);
        assert!(fused > 0, "residual adds should fuse");
        assert_eq!(m.kernels.len(), before - fused);
        // No Elementwise kernel that consumes its predecessor remains.
        for w in m.kernels.windows(2) {
            let prev_out = *w[0].tensor_refs.last().unwrap();
            if matches!(w[1].kind, KernelKind::Elementwise) {
                assert!(
                    !w[1].tensor_refs.contains(&prev_out),
                    "unfused epilogue left behind"
                );
            }
        }
    }

    #[test]
    fn fusion_preserves_total_flops() {
        let mut m = build(ModelId::Bert);
        let flops_before = m.total_flops();
        fuse_elementwise(&mut m);
        let flops_after = m.total_flops();
        assert!((flops_before - flops_after).abs() / flops_before < 1e-9);
    }

    #[test]
    fn fusion_keeps_liveness_indices_valid() {
        let mut m = build(ModelId::DenseNet161);
        fuse_elementwise(&mut m);
        for t in &m.tensors {
            assert!(t.first_use <= t.last_use);
            assert!(t.last_use < m.kernels.len());
        }
    }

    #[test]
    fn persistent_threads_bound_grid_sizes() {
        let spec = GpuModel::RtxA2000.spec();
        let mut m = build(ModelId::ResNet152);
        let n = to_persistent_threads(&mut m, &spec);
        assert!(n > 0, "batch-8 ResNet152 has large grids");
        let cap = spec.num_sms() * 4;
        for k in &m.kernels {
            assert!(k.thread_blocks <= cap);
            if k.persistent_threads {
                assert_eq!(k.thread_blocks, cap);
            }
        }
    }

    #[test]
    fn memory_bound_classification_marks_tensors() {
        let spec = GpuModel::RtxA2000.spec();
        let mut m = build(ModelId::MobileNetV3);
        let marked = classify_memory_bound(&mut m, &spec);
        assert!(marked > 0);
        // Every tensor touched by a memory-bound kernel is marked.
        for k in &m.kernels {
            if k.is_memory_bound(&spec) {
                for &t in &k.tensor_refs {
                    assert!(m.tensors[t].memory_bound);
                }
            }
        }
    }

    #[test]
    fn coloring_only_touches_memory_bound_kernels() {
        let spec = GpuModel::TeslaP40.spec();
        let mut m = build(ModelId::ResNet34);
        apply_coloring(&mut m, &spec, true);
        for k in &m.kernels {
            assert_eq!(k.colored, k.is_memory_bound(&spec), "{}", k.name);
        }
    }

    #[test]
    fn full_pipeline_is_stable() {
        let spec = GpuModel::RtxA2000.spec();
        for id in [ModelId::MobileNetV3, ModelId::Bert, ModelId::DenseNet161] {
            let m = compile(build(id), &spec, CompileOptions::default());
            assert!(!m.kernels.is_empty());
            assert!(m.kernels.iter().any(|k| k.colored));
            assert!(m.tensors.iter().any(|t| t.memory_bound));
        }
    }

    #[test]
    fn register_cdf_matches_fig15b_on_the_zoo() {
        // Transform *all* kernels of all models (the Fig. 15b study) and
        // check the CDF: ~80% zero extra registers, >90% below 5.
        let spec = GpuModel::RtxA2000.spec();
        let mut zero = 0usize;
        let mut under5 = 0usize;
        let mut total = 0usize;
        for id in ModelId::all() {
            let mut m = build(id);
            apply_coloring(&mut m, &spec, false);
            for k in &m.kernels {
                total += 1;
                if k.extra_registers == 0 {
                    zero += 1;
                }
                if k.extra_registers < 5 {
                    under5 += 1;
                }
            }
        }
        let zf = zero as f64 / total as f64;
        let uf = under5 as f64 / total as f64;
        assert!((0.72..0.88).contains(&zf), "zero-reg fraction {zf}");
        assert!(uf > 0.88, "under-5 fraction {uf}");
    }
}
