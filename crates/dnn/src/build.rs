//! Model builder: lowers layer specifications to kernels + tensors.
//!
//! The builders emit what a TVM-style compiler would emit *before* the
//! workspace's own passes run: convolution/GEMM kernels with folded
//! batch-norm, plus standalone elementwise/normalization kernels that the
//! fusion pass (`crate::compiler::fuse_elementwise`) may merge.

use crate::kernel::{kernel_id, KernelDesc, KernelKind};
use coloring::{TensorDesc, TensorRole};

const F32: f64 = 4.0;

/// Incremental builder for one model's kernel/tensor lists.
pub struct ModelBuilder {
    model_name: String,
    batch: u32,
    pub kernels: Vec<KernelDesc>,
    pub tensors: Vec<TensorDesc>,
    /// Tensor index of the most recent activation output.
    cursor: Option<usize>,
}

impl ModelBuilder {
    pub fn new(model_name: &str, batch: u32) -> Self {
        Self {
            model_name: model_name.to_string(),
            batch,
            kernels: Vec::new(),
            tensors: Vec::new(),
            cursor: None,
        }
    }

    pub fn batch(&self) -> u32 {
        self.batch
    }

    fn b(&self) -> f64 {
        self.batch as f64
    }

    /// Declares the network input tensor.
    pub fn input(&mut self, elems: f64) -> usize {
        let idx = self.tensors.len();
        self.tensors.push(TensorDesc {
            name: format!("{}/input", self.model_name),
            bytes: (elems * self.b() * F32) as u64,
            role: TensorRole::Io,
            memory_bound: false,
            first_use: 0,
            last_use: 0,
        });
        self.cursor = Some(idx);
        idx
    }

    fn push_weight(&mut self, name: &str, elems: f64, kernel_idx: usize) -> usize {
        let idx = self.tensors.len();
        self.tensors.push(TensorDesc {
            name: format!("{}/{}", self.model_name, name),
            bytes: (elems * F32) as u64,
            role: TensorRole::Weight,
            memory_bound: false,
            first_use: kernel_idx,
            last_use: kernel_idx,
        });
        idx
    }

    fn push_activation(&mut self, name: &str, elems: f64, kernel_idx: usize) -> usize {
        let idx = self.tensors.len();
        self.tensors.push(TensorDesc {
            name: format!("{}/{}", self.model_name, name),
            bytes: (elems * self.b() * F32) as u64,
            role: TensorRole::Intermediate,
            memory_bound: false,
            first_use: kernel_idx,
            last_use: kernel_idx,
        });
        idx
    }

    fn touch(&mut self, tensor: usize, kernel_idx: usize) {
        let t = &mut self.tensors[tensor];
        t.first_use = t.first_use.min(kernel_idx);
        t.last_use = t.last_use.max(kernel_idx);
    }

    /// Emits one kernel consuming `inputs` (tensor indices) and producing a
    /// fresh activation of `out_elems` per batch item. Returns the output
    /// tensor index.
    #[allow(clippy::too_many_arguments)]
    pub fn op(
        &mut self,
        name: &str,
        kind: KernelKind,
        flops_per_item: f64,
        weight_elems: f64,
        out_elems: f64,
        extra_inputs: &[usize],
    ) -> usize {
        let kidx = self.kernels.len();
        let mut refs: Vec<usize> = Vec::new();
        let mut in_bytes = 0.0;
        if let Some(cur) = self.cursor {
            refs.push(cur);
            in_bytes += self.tensors[cur].bytes as f64;
            self.touch(cur, kidx);
        }
        for &t in extra_inputs {
            refs.push(t);
            in_bytes += self.tensors[t].bytes as f64;
            self.touch(t, kidx);
        }
        let weight = if weight_elems > 0.0 {
            let w = self.push_weight(&format!("{name}.w"), weight_elems, kidx);
            refs.push(w);
            Some(w)
        } else {
            None
        };
        let out = self.push_activation(&format!("{name}.out"), out_elems, kidx);
        refs.push(out);

        let out_bytes = self.tensors[out].bytes as f64;
        let w_bytes = weight.map_or(0.0, |w| self.tensors[w].bytes as f64);
        let flops = flops_per_item * self.b();
        let bytes = in_bytes + out_bytes + w_bytes;
        // Thread blocks follow the tiling of production kernels: GEMM-like
        // kernels produce large output tiles per block (CUTLASS-style
        // 128×64), memory-bound kernels use smaller per-block chunks. This
        // is what makes batch-1 LS kernels saturate at a handful of TPCs —
        // the premise of tidal SM masking (§7.1).
        let tile_elems = match kind {
            KernelKind::Conv | KernelKind::Gemm | KernelKind::Attention => 8192.0,
            _ => 2048.0,
        };
        let blocks = ((out_elems * self.b()) / tile_elems).ceil().max(1.0) as u32;
        self.kernels.push(KernelDesc {
            id: kernel_id(&self.model_name, name),
            name: format!("{}/{}", self.model_name, name),
            kind,
            flops,
            bytes,
            thread_blocks: blocks,
            persistent_threads: false,
            colored: false,
            extra_registers: 0,
            tensor_refs: refs,
        });
        self.cursor = Some(out);
        out
    }

    /// Tensor index of the current activation (for residual skips).
    pub fn checkpoint(&self) -> usize {
        self.cursor.expect("no activation yet")
    }

    /// Rewinds the cursor to a saved checkpoint (branches).
    pub fn rewind(&mut self, tensor: usize) {
        self.cursor = Some(tensor);
    }

    // -- common layer idioms ------------------------------------------------

    /// Dense conv (+ folded BN + activation): `cin→cout`, `k×k`, stride on
    /// an `hw×hw` input.
    pub fn conv(&mut self, name: &str, cin: f64, cout: f64, k: f64, stride: f64, hw: f64) -> usize {
        let ohw = (hw / stride).ceil();
        self.op(
            name,
            KernelKind::Conv,
            2.0 * ohw * ohw * cout * cin * k * k,
            cin * cout * k * k,
            ohw * ohw * cout,
            &[],
        )
    }

    /// Depthwise conv.
    pub fn dwconv(&mut self, name: &str, c: f64, k: f64, stride: f64, hw: f64) -> usize {
        let ohw = (hw / stride).ceil();
        self.op(
            name,
            KernelKind::DwConv,
            2.0 * ohw * ohw * c * k * k,
            c * k * k,
            ohw * ohw * c,
            &[],
        )
    }

    /// 1×1 (pointwise) conv.
    pub fn pw(&mut self, name: &str, cin: f64, cout: f64, hw: f64) -> usize {
        self.conv(name, cin, cout, 1.0, 1.0, hw)
    }

    /// Dense GEMM `m×k · k×n` (per batch item).
    pub fn gemm(&mut self, name: &str, m: f64, n: f64, k: f64) -> usize {
        self.op(name, KernelKind::Gemm, 2.0 * m * n * k, k * n, m * n, &[])
    }

    /// Residual add with a saved checkpoint (standalone elementwise kernel;
    /// the fusion pass may merge it).
    pub fn add(&mut self, name: &str, elems: f64, skip: usize) -> usize {
        self.op(name, KernelKind::Elementwise, elems, 0.0, elems, &[skip])
    }

    /// Standalone normalization kernel (LayerNorm at inference).
    pub fn norm(&mut self, name: &str, elems: f64) -> usize {
        self.op(
            name,
            KernelKind::Norm,
            8.0 * elems,
            2.0 * elems.sqrt(),
            elems,
            &[],
        )
    }

    /// Global average pool.
    pub fn pool(&mut self, name: &str, c: f64, hw: f64) -> usize {
        self.op(name, KernelKind::Pool, c * hw * hw, 0.0, c, &[])
    }

    /// Multi-head self-attention block on `seq` tokens of width `dim`
    /// (emits 4 kernels: QKV projection, scores, context, output
    /// projection).
    pub fn attention(&mut self, name: &str, seq: f64, dim: f64, heads: f64) -> usize {
        self.gemm(&format!("{name}.qkv"), seq, 3.0 * dim, dim);
        // Scores: B·H · seq×seq×(dim/H) + softmax.
        self.op(
            &format!("{name}.scores"),
            KernelKind::Attention,
            2.0 * heads * seq * seq * (dim / heads) + 5.0 * heads * seq * seq,
            0.0,
            heads * seq * seq,
            &[],
        );
        self.op(
            &format!("{name}.context"),
            KernelKind::Attention,
            2.0 * heads * seq * seq * (dim / heads),
            0.0,
            seq * dim,
            &[],
        );
        self.gemm(&format!("{name}.proj"), seq, dim, dim)
    }

    /// Transformer FFN (two GEMMs + standalone activation).
    pub fn ffn(&mut self, name: &str, seq: f64, dim: f64, hidden: f64) -> usize {
        self.gemm(&format!("{name}.fc1"), seq, hidden, dim);
        self.op(
            &format!("{name}.gelu"),
            KernelKind::Elementwise,
            8.0 * seq * hidden,
            0.0,
            seq * hidden,
            &[],
        );
        self.gemm(&format!("{name}.fc2"), seq, dim, hidden)
    }

    /// Token embedding gather.
    pub fn embedding(&mut self, name: &str, vocab: f64, seq: f64, dim: f64) -> usize {
        self.op(
            name,
            KernelKind::Embedding,
            seq * dim,
            vocab * dim,
            seq * dim,
            &[],
        )
    }
}
