//! Kernel-level descriptors — the unit the whole system schedules.
//!
//! SGDRC (like Reef, Clockwork and Paella) serves DNNs as sequences of
//! pre-compiled CUDA kernels. The engine never executes tensor math; it
//! needs each kernel's *resource profile*: FLOPs, DRAM traffic, thread
//! blocks, and the derived roofline classification. These profiles drive
//! the discrete-event execution model and the offline profiler.

use gpu_spec::GpuSpec;

/// Operator category of a kernel (affects achievable efficiency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Dense convolution (implicit GEMM).
    Conv,
    /// Depthwise / grouped convolution — low arithmetic intensity.
    DwConv,
    /// Dense matrix multiply (fully connected, attention projections).
    Gemm,
    /// Attention score × value batched matmuls and softmax fusion.
    Attention,
    /// Elementwise / activation / residual-add — bandwidth bound.
    Elementwise,
    /// Pooling / reduction.
    Pool,
    /// Normalization (BN folded at inference; LN remains).
    Norm,
    /// Embedding gather.
    Embedding,
}

impl KernelKind {
    /// Fraction of peak FP32 the kernel kind typically achieves.
    pub fn compute_efficiency(self) -> f64 {
        match self {
            KernelKind::Conv => 0.55,
            KernelKind::DwConv => 0.20,
            KernelKind::Gemm => 0.65,
            KernelKind::Attention => 0.45,
            KernelKind::Elementwise => 0.90,
            KernelKind::Pool => 0.50,
            KernelKind::Norm => 0.60,
            KernelKind::Embedding => 0.80,
        }
    }

    /// Fraction of peak DRAM bandwidth the kind typically achieves.
    pub fn bandwidth_efficiency(self) -> f64 {
        match self {
            KernelKind::Conv => 0.70,
            KernelKind::DwConv => 0.75,
            KernelKind::Gemm => 0.70,
            KernelKind::Attention => 0.65,
            KernelKind::Elementwise => 0.85,
            KernelKind::Pool => 0.80,
            KernelKind::Norm => 0.80,
            KernelKind::Embedding => 0.60,
        }
    }

    /// Share of issued instructions that are global-memory accesses
    /// (drives the coloring-transform overhead, §9.1.2).
    pub fn memory_instr_share(self) -> f64 {
        match self {
            KernelKind::Conv => 0.25,
            KernelKind::DwConv => 0.55,
            KernelKind::Gemm => 0.22,
            KernelKind::Attention => 0.35,
            KernelKind::Elementwise => 0.95,
            KernelKind::Pool => 0.80,
            KernelKind::Norm => 0.75,
            KernelKind::Embedding => 0.90,
        }
    }
}

/// A compiled GPU kernel's static resource profile.
#[derive(Debug, Clone)]
pub struct KernelDesc {
    /// Stable identity (hash of model + layer + variant).
    pub id: u64,
    pub name: String,
    pub kind: KernelKind,
    /// Floating-point work.
    pub flops: f64,
    /// DRAM bytes moved (reads + writes, after L2 filtering).
    pub bytes: f64,
    /// Thread blocks launched.
    pub thread_blocks: u32,
    /// Transformed to the persistent-thread style (§7.1)?
    pub persistent_threads: bool,
    /// Shadow-page-table re-indexing applied (§6)?
    pub colored: bool,
    /// Extra registers used by the transformed kernel (Fig. 15b).
    pub extra_registers: u32,
    /// Tensor indices (into the model's tensor list) this kernel accesses.
    pub tensor_refs: Vec<usize>,
}

impl KernelDesc {
    /// FLOPs per DRAM byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops / self.bytes.max(1.0)
    }

    /// Roofline classification: a kernel is memory-bound when its
    /// arithmetic intensity falls below the GPU's ridge point. This matches
    /// the paper's operational definition (§7.2: runtime degrades when L2
    /// is thrashed by a co-located kernel) — the offline profiler verifies
    /// the two agree.
    pub fn is_memory_bound(&self, spec: &GpuSpec) -> bool {
        self.arithmetic_intensity() < spec.ridge_flop_per_byte()
    }

    /// Fraction of issued instructions touching global memory.
    pub fn memory_instr_share(&self) -> f64 {
        self.kind.memory_instr_share()
    }

    /// TPCs needed to host every thread block concurrently (beyond this,
    /// extra TPCs cannot help — the basis of the min-SM search, §7.1).
    pub fn saturation_tpcs(&self, spec: &GpuSpec) -> u32 {
        // ~4 resident blocks per SM, 2 SMs per TPC.
        let blocks_per_tpc = 8;
        self.thread_blocks
            .div_ceil(blocks_per_tpc)
            .clamp(1, spec.num_tpcs)
    }
}

/// Stable kernel id from model and kernel names.
pub fn kernel_id(model: &str, kernel: &str) -> u64 {
    // FNV-1a, deterministic across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in model.bytes().chain([b'/']).chain(kernel.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::GpuModel;

    fn kernel(kind: KernelKind, flops: f64, bytes: f64) -> KernelDesc {
        KernelDesc {
            id: 1,
            name: "k".into(),
            kind,
            flops,
            bytes,
            thread_blocks: 64,
            persistent_threads: false,
            colored: false,
            extra_registers: 0,
            tensor_refs: vec![],
        }
    }

    #[test]
    fn roofline_classification() {
        let spec = GpuModel::RtxA2000.spec();
        let gemm = kernel(KernelKind::Gemm, 1e9, 1e6); // AI = 1000
        assert!(!gemm.is_memory_bound(&spec));
        let eltwise = kernel(KernelKind::Elementwise, 1e6, 4e6); // AI = 0.25
        assert!(eltwise.is_memory_bound(&spec));
    }

    #[test]
    fn saturation_tpcs_clamped_to_gpu() {
        let spec = GpuModel::RtxA2000.spec();
        let mut k = kernel(KernelKind::Conv, 1e9, 1e6);
        k.thread_blocks = 4;
        assert_eq!(k.saturation_tpcs(&spec), 1);
        k.thread_blocks = 100_000;
        assert_eq!(k.saturation_tpcs(&spec), spec.num_tpcs);
    }

    #[test]
    fn kernel_ids_are_stable_and_distinct() {
        let a = kernel_id("resnet34", "conv1");
        let b = kernel_id("resnet34", "conv2");
        let c = kernel_id("resnet50", "conv1");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, kernel_id("resnet34", "conv1"));
    }

    #[test]
    fn efficiencies_are_sane() {
        for kind in [
            KernelKind::Conv,
            KernelKind::DwConv,
            KernelKind::Gemm,
            KernelKind::Attention,
            KernelKind::Elementwise,
            KernelKind::Pool,
            KernelKind::Norm,
            KernelKind::Embedding,
        ] {
            assert!((0.1..=1.0).contains(&kind.compute_efficiency()));
            assert!((0.1..=1.0).contains(&kind.bandwidth_efficiency()));
            assert!((0.0..=1.0).contains(&kind.memory_instr_share()));
        }
    }
}
