//! # dnn — model zoo, kernel descriptors and compiler passes
//!
//! The DNN side of the SGDRC reproduction (paper Tab. 3 and the §4 offline
//! phase):
//!
//! * [`kernel`] — kernel-level resource profiles (FLOPs, DRAM bytes,
//!   thread blocks, roofline classification);
//! * [`perf`] — the shared performance model: roofline runtime under a
//!   TPC mask, bandwidth share and intra-SM interference;
//! * [`build`] — the layer-to-kernel lowering builder;
//! * [`zoo`] — the 11 Tab. 3 models (8 LS + 3 BE) with realistic
//!   parameter counts, kernel counts and bound-ness mixtures;
//! * [`compiler`] — fusion, persistent-thread transformation, memory-bound
//!   classification and the §6 coloring transform.

pub mod build;
pub mod compiler;
pub mod kernel;
pub mod perf;
pub mod zoo;

pub use compiler::{compile, CompileOptions};
pub use kernel::{kernel_id, KernelDesc, KernelKind};
pub use perf::{
    bandwidth_demand_gbps, isolated_runtime_us, runtime_us, KernelPerfInvariants, ResourceCtx,
    LAUNCH_OVERHEAD_US,
};
pub use zoo::{build as build_model, build_with_batch, full_zoo, Model, ModelId};
