//! The model zoo — the paper's Tab. 3 workloads.
//!
//! | ID | Model            | Class | Default batch |
//! |----|------------------|-------|---------------|
//! | A  | MobileNetV3      | LS    | 1             |
//! | B  | SqueezeNet       | LS    | 1             |
//! | C  | ShuffleNet       | LS    | 1             |
//! | D  | EfficientNet     | LS    | 1             |
//! | E  | ResNet34         | LS    | 1             |
//! | F  | MobileBert       | LS    | 1             |
//! | G  | MobileViT        | LS    | 1             |
//! | H  | EfficientFormer  | LS    | 1             |
//! | I  | ResNet152        | BE    | 8             |
//! | J  | DenseNet161      | BE    | 8             |
//! | K  | Bert             | BE    | 8             |
//!
//! BE batch sizes follow §9.2: "the minimum values that achieve maximum
//! throughputs". Layer configurations approximate the published
//! architectures closely enough to reproduce parameter counts, kernel
//! counts and the compute/memory-bound kernel mixture.

use crate::build::ModelBuilder;
use crate::kernel::KernelDesc;
use coloring::{TaskClass, TensorDesc, TensorRole};

/// Paper model identifiers (Tab. 3 letters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelId {
    MobileNetV3,
    SqueezeNet,
    ShuffleNet,
    EfficientNet,
    ResNet34,
    MobileBert,
    MobileViT,
    EfficientFormer,
    ResNet152,
    DenseNet161,
    Bert,
}

impl ModelId {
    pub fn letter(self) -> char {
        (b'A' + self as u8) as char
    }

    pub fn name(self) -> &'static str {
        match self {
            ModelId::MobileNetV3 => "MobileNetV3",
            ModelId::SqueezeNet => "SqueezeNet",
            ModelId::ShuffleNet => "ShuffleNet",
            ModelId::EfficientNet => "EfficientNet",
            ModelId::ResNet34 => "ResNet34",
            ModelId::MobileBert => "MobileBert",
            ModelId::MobileViT => "MobileViT",
            ModelId::EfficientFormer => "EfficientFormer",
            ModelId::ResNet152 => "ResNet152",
            ModelId::DenseNet161 => "DenseNet161",
            ModelId::Bert => "Bert",
        }
    }

    pub fn class(self) -> TaskClass {
        match self {
            ModelId::ResNet152 | ModelId::DenseNet161 | ModelId::Bert => TaskClass::Be,
            _ => TaskClass::Ls,
        }
    }

    /// §9.2 batch sizes: LS latency-critical requests run at batch 1; BE
    /// batches are the smallest that saturate throughput.
    pub fn default_batch(self) -> u32 {
        match self.class() {
            TaskClass::Ls => 1,
            TaskClass::Be => 8,
        }
    }

    pub fn all() -> [ModelId; 11] {
        [
            ModelId::MobileNetV3,
            ModelId::SqueezeNet,
            ModelId::ShuffleNet,
            ModelId::EfficientNet,
            ModelId::ResNet34,
            ModelId::MobileBert,
            ModelId::MobileViT,
            ModelId::EfficientFormer,
            ModelId::ResNet152,
            ModelId::DenseNet161,
            ModelId::Bert,
        ]
    }

    pub fn ls_models() -> [ModelId; 8] {
        [
            ModelId::MobileNetV3,
            ModelId::SqueezeNet,
            ModelId::ShuffleNet,
            ModelId::EfficientNet,
            ModelId::ResNet34,
            ModelId::MobileBert,
            ModelId::MobileViT,
            ModelId::EfficientFormer,
        ]
    }

    pub fn be_models() -> [ModelId; 3] {
        [ModelId::ResNet152, ModelId::DenseNet161, ModelId::Bert]
    }
}

/// A fully-specified model: kernels in execution order plus tensor list.
#[derive(Debug, Clone)]
pub struct Model {
    pub id: ModelId,
    pub batch: u32,
    pub kernels: Vec<KernelDesc>,
    pub tensors: Vec<TensorDesc>,
}

impl Model {
    pub fn class(&self) -> TaskClass {
        self.id.class()
    }

    /// Total weight bytes (≈ 4 × parameter count).
    pub fn weight_bytes(&self) -> u64 {
        self.tensors
            .iter()
            .filter(|t| t.role == TensorRole::Weight)
            .map(|t| t.bytes)
            .sum()
    }

    /// Total FLOPs per inference (whole batch).
    pub fn total_flops(&self) -> f64 {
        self.kernels.iter().map(|k| k.flops).sum()
    }
}

/// Builds a model at its default batch size.
pub fn build(id: ModelId) -> Model {
    build_with_batch(id, id.default_batch())
}

/// Builds a model at an explicit batch size.
pub fn build_with_batch(id: ModelId, batch: u32) -> Model {
    let mut b = ModelBuilder::new(id.name(), batch);
    match id {
        ModelId::MobileNetV3 => mobilenet_v3(&mut b),
        ModelId::SqueezeNet => squeezenet(&mut b),
        ModelId::ShuffleNet => shufflenet_v2(&mut b),
        ModelId::EfficientNet => efficientnet_b0(&mut b),
        ModelId::ResNet34 => resnet34(&mut b),
        ModelId::MobileBert => mobilebert(&mut b),
        ModelId::MobileViT => mobilevit(&mut b),
        ModelId::EfficientFormer => efficientformer(&mut b),
        ModelId::ResNet152 => resnet152(&mut b),
        ModelId::DenseNet161 => densenet161(&mut b),
        ModelId::Bert => bert_base(&mut b),
    }
    Model {
        id,
        batch,
        kernels: b.kernels,
        tensors: b.tensors,
    }
}

/// The full Tab. 3 zoo at default batch sizes.
pub fn full_zoo() -> Vec<Model> {
    ModelId::all().iter().map(|&id| build(id)).collect()
}

// ---------------------------------------------------------------------------
// Architectures (dimensions follow the published configurations)
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn inverted_residual(
    b: &mut ModelBuilder,
    tag: &str,
    cin: f64,
    exp: f64,
    cout: f64,
    k: f64,
    stride: f64,
    hw: f64,
) -> f64 {
    let skip = (stride == 1.0 && cin == cout).then(|| b.checkpoint());
    b.pw(&format!("{tag}.expand"), cin, exp, hw);
    b.dwconv(&format!("{tag}.dw"), exp, k, stride, hw);
    let ohw = hw / stride;
    b.pw(&format!("{tag}.project"), exp, cout, ohw);
    if let Some(s) = skip {
        b.add(&format!("{tag}.residual"), ohw * ohw * cout, s);
    }
    ohw
}

fn mobilenet_v3(b: &mut ModelBuilder) {
    b.input(3.0 * 224.0 * 224.0);
    b.conv("stem", 3.0, 16.0, 3.0, 2.0, 224.0);
    let mut hw = 112.0;
    let cfg: [(f64, f64, f64, f64, f64); 11] = [
        (16.0, 16.0, 16.0, 3.0, 1.0),
        (16.0, 64.0, 24.0, 3.0, 2.0),
        (24.0, 72.0, 24.0, 3.0, 1.0),
        (24.0, 72.0, 40.0, 5.0, 2.0),
        (40.0, 120.0, 40.0, 5.0, 1.0),
        (40.0, 240.0, 80.0, 3.0, 2.0),
        (80.0, 480.0, 112.0, 3.0, 1.0),
        (112.0, 672.0, 112.0, 5.0, 1.0),
        (112.0, 672.0, 160.0, 5.0, 2.0),
        (160.0, 960.0, 160.0, 5.0, 1.0),
        (160.0, 960.0, 160.0, 5.0, 1.0),
    ];
    for (i, &(cin, exp, cout, k, s)) in cfg.iter().enumerate() {
        hw = inverted_residual(b, &format!("block{i}"), cin, exp, cout, k, s, hw);
    }
    b.pw("head.expand", 160.0, 960.0, hw);
    b.pool("head.pool", 960.0, hw);
    b.gemm("head.fc1", 1.0, 1280.0, 960.0);
    b.gemm("classifier", 1.0, 1000.0, 1280.0);
}

fn squeezenet(b: &mut ModelBuilder) {
    b.input(3.0 * 224.0 * 224.0);
    b.conv("stem", 3.0, 96.0, 7.0, 2.0, 224.0);
    let fire = |b: &mut ModelBuilder, tag: &str, cin: f64, s: f64, e: f64, hw: f64| {
        b.pw(&format!("{tag}.squeeze"), cin, s, hw);
        let sq = b.checkpoint();
        b.pw(&format!("{tag}.expand1"), s, e, hw);
        b.rewind(sq);
        b.conv(&format!("{tag}.expand3"), s, e, 3.0, 1.0, hw);
    };
    let mut hw = 56.0;
    fire(b, "fire2", 96.0, 16.0, 64.0, hw);
    fire(b, "fire3", 128.0, 16.0, 64.0, hw);
    fire(b, "fire4", 128.0, 32.0, 128.0, hw);
    hw = 28.0;
    fire(b, "fire5", 256.0, 32.0, 128.0, hw);
    fire(b, "fire6", 256.0, 48.0, 192.0, hw);
    fire(b, "fire7", 384.0, 48.0, 192.0, hw);
    fire(b, "fire8", 384.0, 64.0, 256.0, hw);
    hw = 14.0;
    fire(b, "fire9", 512.0, 64.0, 256.0, hw);
    b.conv("classifier", 512.0, 1000.0, 1.0, 1.0, hw);
    b.pool("final.pool", 1000.0, hw);
}

fn shufflenet_v2(b: &mut ModelBuilder) {
    b.input(3.0 * 224.0 * 224.0);
    b.conv("stem", 3.0, 24.0, 3.0, 2.0, 224.0);
    let unit = |b: &mut ModelBuilder, tag: &str, c: f64, stride: f64, hw: f64| {
        let half = c / 2.0;
        b.pw(&format!("{tag}.pw1"), half, half, hw);
        b.dwconv(&format!("{tag}.dw"), half, 3.0, stride, hw);
        b.pw(&format!("{tag}.pw2"), half, half, hw / stride);
    };
    let mut hw = 56.0;
    for (stage, (c, reps)) in [(116.0, 4), (232.0, 8), (464.0, 4)].iter().enumerate() {
        for r in 0..*reps {
            let stride = if r == 0 { 2.0 } else { 1.0 };
            unit(b, &format!("s{stage}.u{r}"), *c, stride, hw);
            if r == 0 {
                hw /= 2.0;
            }
        }
    }
    b.pw("conv5", 464.0, 1024.0, hw);
    b.pool("pool", 1024.0, hw);
    b.gemm("classifier", 1.0, 1000.0, 1024.0);
}

fn efficientnet_b0(b: &mut ModelBuilder) {
    b.input(3.0 * 224.0 * 224.0);
    b.conv("stem", 3.0, 32.0, 3.0, 2.0, 224.0);
    let mut hw = 112.0;
    let mut cin = 32.0;
    let cfg: [(f64, f64, f64, f64, usize); 7] = [
        (1.0, 16.0, 3.0, 1.0, 1),
        (6.0, 24.0, 3.0, 2.0, 2),
        (6.0, 40.0, 5.0, 2.0, 2),
        (6.0, 80.0, 3.0, 2.0, 3),
        (6.0, 112.0, 5.0, 1.0, 3),
        (6.0, 192.0, 5.0, 2.0, 4),
        (6.0, 320.0, 3.0, 1.0, 1),
    ];
    for (si, &(t, c, k, s, reps)) in cfg.iter().enumerate() {
        for r in 0..reps {
            let stride = if r == 0 { s } else { 1.0 };
            hw = inverted_residual(
                b,
                &format!("mb{si}.{r}"),
                cin,
                (cin * t).max(cin),
                c,
                k,
                stride,
                hw,
            );
            cin = c;
        }
    }
    b.pw("head", 320.0, 1280.0, hw);
    b.pool("pool", 1280.0, hw);
    b.gemm("classifier", 1.0, 1000.0, 1280.0);
}

fn basic_block(b: &mut ModelBuilder, tag: &str, cin: f64, cout: f64, stride: f64, hw: f64) -> f64 {
    let skip = (stride == 1.0 && cin == cout).then(|| b.checkpoint());
    b.conv(&format!("{tag}.conv1"), cin, cout, 3.0, stride, hw);
    let ohw = hw / stride;
    b.conv(&format!("{tag}.conv2"), cout, cout, 3.0, 1.0, ohw);
    if let Some(s) = skip {
        b.add(&format!("{tag}.residual"), ohw * ohw * cout, s);
    }
    ohw
}

fn resnet34(b: &mut ModelBuilder) {
    b.input(3.0 * 224.0 * 224.0);
    b.conv("stem", 3.0, 64.0, 7.0, 2.0, 224.0);
    let mut hw = 56.0;
    let mut cin = 64.0;
    for (si, (c, reps)) in [(64.0, 3), (128.0, 4), (256.0, 6), (512.0, 3)]
        .iter()
        .enumerate()
    {
        for r in 0..*reps {
            let stride = if r == 0 && si > 0 { 2.0 } else { 1.0 };
            hw = basic_block(b, &format!("s{si}.b{r}"), cin, *c, stride, hw);
            cin = *c;
        }
    }
    b.pool("pool", 512.0, hw);
    b.gemm("classifier", 1.0, 1000.0, 512.0);
}

fn bottleneck(b: &mut ModelBuilder, tag: &str, cin: f64, mid: f64, stride: f64, hw: f64) -> f64 {
    let cout = mid * 4.0;
    let skip = (stride == 1.0 && cin == cout).then(|| b.checkpoint());
    b.pw(&format!("{tag}.conv1"), cin, mid, hw);
    b.conv(&format!("{tag}.conv2"), mid, mid, 3.0, stride, hw);
    let ohw = hw / stride;
    b.pw(&format!("{tag}.conv3"), mid, cout, ohw);
    if let Some(s) = skip {
        b.add(&format!("{tag}.residual"), ohw * ohw * cout, s);
    }
    ohw
}

fn resnet152(b: &mut ModelBuilder) {
    b.input(3.0 * 224.0 * 224.0);
    b.conv("stem", 3.0, 64.0, 7.0, 2.0, 224.0);
    let mut hw = 56.0;
    let mut cin = 64.0;
    for (si, (mid, reps)) in [(64.0, 3), (128.0, 8), (256.0, 36), (512.0, 3)]
        .iter()
        .enumerate()
    {
        for r in 0..*reps {
            let stride = if r == 0 && si > 0 { 2.0 } else { 1.0 };
            hw = bottleneck(b, &format!("s{si}.b{r}"), cin, *mid, stride, hw);
            cin = mid * 4.0;
        }
    }
    b.pool("pool", 2048.0, hw);
    b.gemm("classifier", 1.0, 1000.0, 2048.0);
}

fn densenet161(b: &mut ModelBuilder) {
    b.input(3.0 * 224.0 * 224.0);
    b.conv("stem", 3.0, 96.0, 7.0, 2.0, 224.0);
    let growth = 48.0;
    let mut c = 96.0;
    let mut hw = 56.0;
    for (bi, reps) in [6usize, 12, 36, 24].iter().enumerate() {
        for r in 0..*reps {
            // Dense layer: BN + 1×1 (4k) + 3×3 (k); concat grows channels.
            b.pw(&format!("d{bi}.{r}.pw"), c, 4.0 * growth, hw);
            b.conv(
                &format!("d{bi}.{r}.conv"),
                4.0 * growth,
                growth,
                3.0,
                1.0,
                hw,
            );
            c += growth;
        }
        if bi < 3 {
            // Transition: 1×1 halving channels + 2×2 pool.
            c = (c / 2.0).floor();
            b.pw(&format!("t{bi}.pw"), c * 2.0, c, hw);
            hw /= 2.0;
        }
    }
    b.pool("pool", c, hw);
    b.gemm("classifier", 1.0, 1000.0, c);
}

fn transformer_stack(
    b: &mut ModelBuilder,
    tag: &str,
    layers: usize,
    seq: f64,
    dim: f64,
    heads: f64,
    ffn: f64,
) {
    for l in 0..layers {
        let skip = b.checkpoint();
        b.attention(&format!("{tag}.l{l}.attn"), seq, dim, heads);
        b.add(&format!("{tag}.l{l}.res1"), seq * dim, skip);
        b.norm(&format!("{tag}.l{l}.ln1"), seq * dim);
        let skip2 = b.checkpoint();
        b.ffn(&format!("{tag}.l{l}.ffn"), seq, dim, ffn);
        b.add(&format!("{tag}.l{l}.res2"), seq * dim, skip2);
        b.norm(&format!("{tag}.l{l}.ln2"), seq * dim);
    }
}

fn mobilebert(b: &mut ModelBuilder) {
    // MobileBERT narrows the transformer body through bottlenecks; the
    // effective width below reproduces the published 25M parameters.
    let (seq, dim) = (128.0, 384.0);
    b.input(seq);
    b.embedding("embed", 30522.0, seq, 128.0);
    b.gemm("embed.up", seq, dim, 128.0);
    transformer_stack(b, "body", 24, seq, dim, 4.0, 512.0);
    b.gemm("pooler", 1.0, dim, dim);
}

fn bert_base(b: &mut ModelBuilder) {
    let (seq, dim) = (128.0, 768.0);
    b.input(seq);
    b.embedding("embed", 30522.0, seq, dim);
    transformer_stack(b, "body", 12, seq, dim, 12.0, 3072.0);
    b.gemm("pooler", 1.0, dim, dim);
}

fn mobilevit(b: &mut ModelBuilder) {
    b.input(3.0 * 256.0 * 256.0);
    b.conv("stem", 3.0, 16.0, 3.0, 2.0, 256.0);
    let mut hw = 128.0;
    hw = inverted_residual(b, "mv2.0", 16.0, 64.0, 32.0, 3.0, 1.0, hw);
    hw = inverted_residual(b, "mv2.1", 32.0, 128.0, 64.0, 3.0, 2.0, hw);
    hw = inverted_residual(b, "mv2.2", 64.0, 256.0, 96.0, 3.0, 2.0, hw);
    // MobileViT block 1: local conv + 2 transformer layers on unfolded
    // patches (dim 144).
    b.conv("mvit1.local", 96.0, 96.0, 3.0, 1.0, hw);
    b.pw("mvit1.proj", 96.0, 144.0, hw);
    transformer_stack(b, "mvit1", 2, hw * hw / 4.0, 144.0, 4.0, 288.0);
    b.pw("mvit1.out", 144.0, 96.0, hw);
    hw = inverted_residual(b, "mv2.3", 96.0, 384.0, 128.0, 3.0, 2.0, hw);
    b.conv("mvit2.local", 128.0, 128.0, 3.0, 1.0, hw);
    b.pw("mvit2.proj", 128.0, 192.0, hw);
    transformer_stack(b, "mvit2", 4, hw * hw / 4.0, 192.0, 4.0, 384.0);
    b.pw("mvit2.out", 192.0, 128.0, hw);
    hw = inverted_residual(b, "mv2.4", 128.0, 512.0, 160.0, 3.0, 2.0, hw);
    b.conv("mvit3.local", 160.0, 160.0, 3.0, 1.0, hw);
    b.pw("mvit3.proj", 160.0, 240.0, hw);
    transformer_stack(b, "mvit3", 3, hw * hw / 4.0, 240.0, 4.0, 480.0);
    b.pw("mvit3.out", 240.0, 160.0, hw);
    b.pw("head", 160.0, 640.0, hw);
    b.pool("pool", 640.0, hw);
    b.gemm("classifier", 1.0, 1000.0, 640.0);
}

fn efficientformer(b: &mut ModelBuilder) {
    b.input(3.0 * 224.0 * 224.0);
    b.conv("stem1", 3.0, 24.0, 3.0, 2.0, 224.0);
    b.conv("stem2", 24.0, 48.0, 3.0, 2.0, 112.0);
    let mut hw = 56.0;
    // Conv-style token mixer stages (pool + MLP blocks).
    let mut c = 48.0;
    for (si, (cout, reps)) in [(48.0, 3), (96.0, 2), (224.0, 6), (448.0, 4)]
        .iter()
        .enumerate()
    {
        if si > 0 {
            b.conv(&format!("down{si}"), c, *cout, 3.0, 2.0, hw);
            hw /= 2.0;
            c = *cout;
        }
        for r in 0..*reps {
            let skip = b.checkpoint();
            b.pool(&format!("s{si}.{r}.mixer"), c, hw);
            b.pw(&format!("s{si}.{r}.mlp1"), c, 4.0 * c, hw);
            b.pw(&format!("s{si}.{r}.mlp2"), 4.0 * c, c, hw);
            b.add(&format!("s{si}.{r}.res"), hw * hw * c, skip);
        }
    }
    // Final stage: one attention block on 7×7 tokens.
    transformer_stack(b, "attn", 1, hw * hw, 448.0, 8.0, 1792.0);
    b.pool("pool", 448.0, hw);
    b.gemm("classifier", 1.0, 1000.0, 448.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf;
    use gpu_spec::GpuModel;

    #[test]
    fn zoo_has_eleven_models() {
        let zoo = full_zoo();
        assert_eq!(zoo.len(), 11);
        let letters: String = zoo.iter().map(|m| m.id.letter()).collect();
        assert_eq!(letters, "ABCDEFGHIJK");
    }

    #[test]
    fn ls_be_split_matches_tab3() {
        assert_eq!(ModelId::ls_models().len(), 8);
        assert_eq!(ModelId::be_models().len(), 3);
        for id in ModelId::ls_models() {
            assert_eq!(id.class(), TaskClass::Ls);
            assert_eq!(id.default_batch(), 1);
        }
        for id in ModelId::be_models() {
            assert_eq!(id.class(), TaskClass::Be);
            assert!(id.default_batch() > 1);
        }
    }

    #[test]
    fn parameter_counts_are_plausible() {
        // ±40% of the published parameter counts (millions).
        let expect = [
            (ModelId::MobileNetV3, 5.4),
            (ModelId::SqueezeNet, 1.2),
            (ModelId::ShuffleNet, 2.3),
            (ModelId::EfficientNet, 5.3),
            (ModelId::ResNet34, 21.8),
            (ModelId::MobileBert, 25.0),
            (ModelId::MobileViT, 5.6),
            (ModelId::EfficientFormer, 12.0),
            (ModelId::ResNet152, 60.0),
            (ModelId::DenseNet161, 28.7),
            (ModelId::Bert, 110.0),
        ];
        for (id, millions) in expect {
            let m = build(id);
            let params = m.weight_bytes() as f64 / 4.0 / 1e6;
            assert!(
                params > millions * 0.6 && params < millions * 1.4,
                "{}: {params:.1}M params vs published {millions}M",
                id.name()
            );
        }
    }

    #[test]
    fn kernel_counts_are_realistic() {
        for m in full_zoo() {
            let n = m.kernels.len();
            assert!((20..400).contains(&n), "{}: {n} kernels", m.id.name());
        }
        // DenseNet161 has the most kernels of the CNNs (dense layers).
        let dense = build(ModelId::DenseNet161).kernels.len();
        let res34 = build(ModelId::ResNet34).kernels.len();
        assert!(dense > res34);
    }

    #[test]
    fn isolated_latencies_are_ordered_sanely() {
        let spec = GpuModel::RtxA2000.spec();
        let e2e = |id: ModelId| -> f64 {
            build(id)
                .kernels
                .iter()
                .map(|k| perf::isolated_runtime_us(k, &spec))
                .sum()
        };
        let mobilenet = e2e(ModelId::MobileNetV3);
        let resnet152 = e2e(ModelId::ResNet152);
        let bert = e2e(ModelId::Bert);
        assert!(mobilenet < resnet152, "{mobilenet} vs {resnet152}");
        assert!(
            mobilenet > 200.0 && mobilenet < 5_000.0,
            "MobileNetV3 {mobilenet}µs"
        );
        assert!(
            resnet152 > 5_000.0 && resnet152 < 200_000.0,
            "ResNet152 {resnet152}µs"
        );
        assert!(bert > 2_000.0, "Bert {bert}µs");
    }

    #[test]
    fn memory_bound_mix_is_nontrivial() {
        // Both bound classes must be represented (the scheduler depends on
        // the distinction).
        let spec = GpuModel::RtxA2000.spec();
        for m in full_zoo() {
            let mb = m
                .kernels
                .iter()
                .filter(|k| k.is_memory_bound(&spec))
                .count();
            assert!(mb > 0, "{} has no memory-bound kernels", m.id.name());
            assert!(
                mb < m.kernels.len(),
                "{} is entirely memory-bound",
                m.id.name()
            );
        }
    }

    #[test]
    fn batch_scales_flops_linearly() {
        let b1 = build_with_batch(ModelId::ResNet152, 1);
        let b8 = build_with_batch(ModelId::ResNet152, 8);
        let ratio = b8.total_flops() / b1.total_flops();
        assert!((ratio - 8.0).abs() < 0.01);
    }

    #[test]
    fn tensors_have_valid_liveness() {
        for m in full_zoo() {
            for t in &m.tensors {
                assert!(t.first_use <= t.last_use, "{}", t.name);
                assert!(t.last_use < m.kernels.len(), "{}", t.name);
            }
        }
    }

    #[test]
    fn kernels_reference_valid_tensors() {
        for m in full_zoo() {
            for k in &m.kernels {
                assert!(!k.tensor_refs.is_empty(), "{}", k.name);
                for &t in &k.tensor_refs {
                    assert!(t < m.tensors.len(), "{}", k.name);
                }
            }
        }
    }

    #[test]
    fn flops_magnitudes_are_plausible() {
        // Published MACs ×2, batch 1 (±50%).
        let m = build_with_batch(ModelId::ResNet34, 1);
        let gflops = m.total_flops() / 1e9;
        assert!((4.0..12.0).contains(&gflops), "ResNet34 {gflops} GFLOPs");
        let m = build_with_batch(ModelId::MobileNetV3, 1);
        let gflops = m.total_flops() / 1e9;
        assert!((0.2..1.5).contains(&gflops), "MobileNetV3 {gflops} GFLOPs");
    }
}
