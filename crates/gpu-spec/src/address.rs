//! Physical / virtual address model of NVIDIA GPUs (paper Fig. 10).
//!
//! The paper's reverse engineering established the following structure for
//! the physical address bits of post-Pascal NVIDIA GPUs:
//!
//! ```text
//! x34 .. x12 | x11 x10 | x9 x8 x7 | x6 .. x0
//!            |         |          +-- offset inside a 128 B L2 cacheline
//!            |         +------------- offset inside a 1 KiB channel partition
//!            +----------------------- 4 KiB MMU page boundary at bit 12
//! bits 10..=34 form the input of the VRAM channel hash mapping function
//! ```
//!
//! Every contiguous 1 KiB of physical VRAM (a *channel partition*) belongs to
//! a single VRAM channel (paper §5.2). This module provides strongly typed
//! address wrappers and the bit arithmetic shared by the whole workspace.

/// log2 of the L2 cacheline size (128 B).
pub const CACHELINE_SHIFT: u32 = 7;
/// L2 cacheline size in bytes.
pub const CACHELINE_BYTES: u64 = 1 << CACHELINE_SHIFT;

/// log2 of the channel-partition size (1 KiB). Each partition maps entirely
/// to one VRAM channel (paper Fig. 10).
pub const PARTITION_SHIFT: u32 = 10;
/// Channel-partition size in bytes.
pub const PARTITION_BYTES: u64 = 1 << PARTITION_SHIFT;

/// log2 of the minimal page size supported by the GPU MMU (4 KiB).
pub const PAGE_SHIFT: u32 = 12;
/// Minimal MMU page size in bytes.
pub const PAGE_BYTES: u64 = 1 << PAGE_SHIFT;

/// Highest physical address bit that participates in the channel hash
/// (bit 34 ⇒ up to 32 GiB of physical VRAM).
pub const MAX_HASH_BIT: u32 = 34;

/// A physical VRAM address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A virtual address inside one GPU context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

impl PhysAddr {
    /// Index of the 1 KiB channel partition containing this address.
    #[inline]
    pub fn partition(self) -> u64 {
        self.0 >> PARTITION_SHIFT
    }

    /// Index of the 128 B cacheline containing this address.
    #[inline]
    pub fn cacheline(self) -> u64 {
        self.0 >> CACHELINE_SHIFT
    }

    /// Physical page frame number (4 KiB frames).
    #[inline]
    pub fn pfn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Byte offset inside the 4 KiB page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_BYTES - 1)
    }

    /// Byte offset inside the 1 KiB channel partition.
    #[inline]
    pub fn partition_offset(self) -> u64 {
        self.0 & (PARTITION_BYTES - 1)
    }

    /// The bits that feed the channel hash mapping function
    /// (bits `PARTITION_SHIFT ..= MAX_HASH_BIT`, i.e. the partition index
    /// truncated to 25 bits).
    #[inline]
    pub fn hash_input(self) -> u64 {
        (self.0 >> PARTITION_SHIFT) & ((1 << (MAX_HASH_BIT - PARTITION_SHIFT + 1)) - 1)
    }

    /// First address of the partition containing this address.
    #[inline]
    pub fn partition_base(self) -> PhysAddr {
        PhysAddr(self.0 & !(PARTITION_BYTES - 1))
    }

    #[inline]
    pub fn offset(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }
}

impl VirtAddr {
    /// Virtual page frame number (4 KiB frames).
    #[inline]
    pub fn vpn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Byte offset inside the 4 KiB page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_BYTES - 1)
    }

    #[inline]
    pub fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

impl From<u64> for VirtAddr {
    fn from(v: u64) -> Self {
        VirtAddr(v)
    }
}

/// L2 set index of a cacheline. NVIDIA L2 slices hash the set index by
/// folding higher cacheline bits into the low bits (micro-benchmarking
/// literature, paper ref [30]); this decorrelates set placement from the
/// channel interleaving. Shared between the simulator and the probing code
/// — the geometry is public knowledge, unlike the channel hash.
#[inline]
pub fn l2_set_of(cacheline: u64, sets_per_slice: u64) -> u64 {
    (cacheline ^ (cacheline >> 8)) & (sets_per_slice - 1)
}

/// Injective cacheline tag/set key used by the L2 model (invertible
/// xor-shift, so distinct cachelines keep distinct tags).
#[inline]
pub fn l2_set_key(cacheline: u64) -> u64 {
    cacheline ^ (cacheline >> 8)
}

/// The *set group* of a 1 KiB partition: its eight cachelines occupy eight
/// consecutive hashed sets, and this index identifies that aligned block of
/// eight sets. Two partitions with equal set groups contend for the same L2
/// sets of their respective channels.
#[inline]
pub fn l2_set_group_of_partition(partition: u64, sets_per_slice: u64) -> u64 {
    let base_line = partition << 3;
    ((base_line ^ (partition >> 5)) & (sets_per_slice - 1)) >> 3
}

/// Byte offset of the cacheline inside partition `other` that maps to the
/// same L2 set as the *base* cacheline of partition `cand` (both partitions
/// must share a set group). Follows directly from [`l2_set_of`]: line `i`
/// of partition `p` lands in set `(8p + i) ^ (p >> 5)` (mod sets), so the
/// matching line index is the XOR of the two partitions' high-bit folds.
#[inline]
pub fn same_set_line_offset(cand_partition: u64, other_partition: u64) -> u64 {
    (((cand_partition >> 5) ^ (other_partition >> 5)) & 7) * CACHELINE_BYTES
}

/// Renders the Fig. 10 address-bit diagram for documentation binaries.
pub fn address_bit_diagram() -> String {
    let mut s = String::new();
    s.push_str("NVIDIA GPU physical address bit structure (paper Fig. 10)\n");
    s.push_str("bit 34..12 : input of the VRAM channel hash mapping (with bits 11..10)\n");
    s.push_str("bit 12     : minimal page size supported by the GPU MMU (4 KiB)\n");
    s.push_str("bit 11..10 : offset of 1 KiB channel partitions inside a page\n");
    s.push_str("bit  9..7  : DRAM bank row offset / offset in channel partition\n");
    s.push_str("bit  6..0  : offset inside a 128 B L2 cacheline\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_arithmetic() {
        let a = PhysAddr(0x12345678);
        assert_eq!(a.partition(), 0x12345678 >> 10);
        assert_eq!(a.partition_base().0 % PARTITION_BYTES, 0);
        assert!(a.0 - a.partition_base().0 < PARTITION_BYTES);
    }

    #[test]
    fn page_arithmetic() {
        let a = PhysAddr(0xABCD_E123);
        assert_eq!(a.pfn() << PAGE_SHIFT | a.page_offset(), a.0);
        let v = VirtAddr(0xABCD_E123);
        assert_eq!(v.vpn() << PAGE_SHIFT | v.page_offset(), v.0);
    }

    #[test]
    fn four_partitions_per_page() {
        // Bits 10 and 11 select one of four 1 KiB partitions inside a 4 KiB
        // page — the structural fact that forces sub-page coloring (§6).
        assert_eq!(PAGE_BYTES / PARTITION_BYTES, 4);
    }

    #[test]
    fn hash_input_is_partition_truncated() {
        let a = PhysAddr((1 << 35) | 0x400);
        // Bit 35 is outside the hash input range.
        assert_eq!(a.hash_input(), 1);
    }

    #[test]
    fn cacheline_within_partition() {
        assert_eq!(PARTITION_BYTES / CACHELINE_BYTES, 8);
        let a = PhysAddr(0x1000);
        assert_eq!(a.cacheline(), 0x1000 >> 7);
    }

    #[test]
    fn diagram_mentions_all_fields() {
        let d = address_bit_diagram();
        assert!(d.contains("4 KiB"));
        assert!(d.contains("128 B"));
        assert!(d.contains("1 KiB"));
    }
}
