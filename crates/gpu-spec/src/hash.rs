//! Ground-truth VRAM channel hash mappings.
//!
//! Real NVIDIA GPUs map each physical address to a VRAM channel, an L2
//! cacheline and a DRAM bank row "through black-box hash mapping functions
//! implemented in gate circuits" (paper §2.1). The paper's key structural
//! findings (§5.2, Fig. 8–10, Tab. 4) are:
//!
//! * each contiguous 1 KiB *channel partition* maps to a single channel;
//! * contiguous partitions form *m-permutations* of small channel groups
//!   (Tesla P40: groups of 4 channels, 24 patterns; RTX A2000: groups of 2
//!   channels, 12 patterns);
//! * the patterns are uniformly distributed across the VRAM space;
//! * at most `g` KiB of contiguous space shares the same channel *set*
//!   (`g` = group size), which bounds the coloring granularity (Tab. 4);
//! * the mapping of GPUs whose channel count is not a power of two is
//!   **not** linear over GF(2), so FGPU's pure-XOR reverse engineering
//!   fails on them (§3.2).
//!
//! Two ground-truth families are provided:
//!
//! * [`XorChannelHash`] — a pure XOR fold, the structure FGPU assumes; used
//!   for the GTX 1080 model (8 channels, power of two).
//! * [`PermutationChannelHash`] — a non-linear mapping built from channel
//!   groups, per-window pattern schedules and modular (non-GF(2)) pattern
//!   selection; used for the Tesla P40 and RTX A2000 models. Non-power-of-2
//!   interleaving via small moduli mirrors what reverse engineering of CPU
//!   LLC slice hashes found for non-power-of-2 slice counts (paper refs
//!   [2, 13, 29]).
//!
//! Only the simulator queries these oracles directly. The reverse
//! engineering crate treats the device as a black box and must *recover*
//! the mapping from memory latencies alone.

use crate::address::{PhysAddr, PARTITION_BYTES};

/// Classification of a hash mapping's algebraic structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashKind {
    /// Channel bits are XOR folds of address bits (GF(2)-linear). FGPU's
    /// Gaussian-elimination attack succeeds on this family.
    LinearXor,
    /// Group/pattern selection involves a modulo by a non-power-of-two, so
    /// the mapping is not GF(2)-linear and FGPU's attack fails.
    NonLinearPermutation,
}

/// A physical-address → VRAM-channel mapping oracle.
pub trait ChannelHash: Send + Sync {
    /// Total number of VRAM channels.
    fn num_channels(&self) -> u16;
    /// Channel that the 1 KiB partition containing `addr` maps to.
    fn channel_of(&self, addr: PhysAddr) -> u16;
    /// Algebraic structure of the mapping.
    fn kind(&self) -> HashKind;

    /// Channel of a partition index (convenience for whole-partition scans).
    fn channel_of_partition(&self, partition: u64) -> u16 {
        self.channel_of(PhysAddr(partition * PARTITION_BYTES))
    }
}

// ---------------------------------------------------------------------------
// Linear XOR hash (FGPU-compatible GPUs such as the GTX 1080)
// ---------------------------------------------------------------------------

/// GF(2)-linear channel hash: channel bit `i` is the parity of the partition
/// index ANDed with `masks[i]`.
#[derive(Debug, Clone)]
pub struct XorChannelHash {
    masks: Vec<u64>,
}

impl XorChannelHash {
    /// Builds a hash with explicit per-bit masks over the partition index.
    ///
    /// # Panics
    /// Panics if no masks are given (at least one channel bit is required).
    pub fn new(masks: Vec<u64>) -> Self {
        assert!(!masks.is_empty(), "at least one channel bit required");
        Self { masks }
    }

    /// The GTX 1080 ground truth: 8 channels. Partition bits 0 and 1 feed
    /// channel bits 0 and 1 (so 4 consecutive partitions cover a 4-channel
    /// aligned group — Tab. 4 lists 4 contiguous channels and a 4 KiB
    /// maximum coloring granularity), while channel bit 2 only folds upper
    /// bits.
    pub fn gtx1080() -> Self {
        Self::new(vec![
            // bit 0: p0 ^ p3 ^ p7 ^ p11 ^ p15 ^ p19
            0b1000_1000_1000_1000_1001,
            // bit 1: p1 ^ p4 ^ p8 ^ p12 ^ p16 ^ p20
            0b1_0001_0001_0001_0001_0010,
            // bit 2: p5 ^ p9 ^ p13 ^ p17 ^ p21 — no low partition bits, so
            // 4-partition blocks stay inside one aligned 4-channel group
            // (Tab. 4: 4 contiguous channels, 4 KiB max granularity).
            0b10_0010_0010_0010_0010_0000,
        ])
    }

    /// Per-bit masks (used by tests and by the FGPU attack validator).
    pub fn masks(&self) -> &[u64] {
        &self.masks
    }
}

#[inline]
fn parity64(v: u64) -> u64 {
    (v.count_ones() & 1) as u64
}

impl ChannelHash for XorChannelHash {
    fn num_channels(&self) -> u16 {
        1 << self.masks.len()
    }

    fn channel_of(&self, addr: PhysAddr) -> u16 {
        let p = addr.hash_input();
        let mut ch = 0u16;
        for (i, &m) in self.masks.iter().enumerate() {
            ch |= (parity64(p & m) as u16) << i;
        }
        ch
    }

    fn kind(&self) -> HashKind {
        HashKind::LinearXor
    }
}

// ---------------------------------------------------------------------------
// Non-linear permutation hash (Tesla P40, RTX A2000)
// ---------------------------------------------------------------------------

/// All permutations of `0..n` in lexicographic order (n ≤ 4 in practice).
pub fn permutations(n: usize) -> Vec<Vec<u16>> {
    fn rec(prefix: &mut Vec<u16>, rest: &mut Vec<u16>, out: &mut Vec<Vec<u16>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rest.len() {
            let v = rest.remove(i);
            prefix.push(v);
            rec(prefix, rest, out);
            prefix.pop();
            rest.insert(i, v);
        }
    }
    let mut out = Vec::new();
    rec(&mut Vec::new(), &mut (0..n as u16).collect(), &mut out);
    out
}

/// Six block-group arrangements of the multiset {0,0,1,1,2,2} used to place
/// the three channel groups inside one window. Every arrangement contains
/// each group exactly twice (channels stay perfectly uniform), and each
/// group's slot *pair* is distinct across all six arrangements — which is
/// what makes the per-group pattern census (Fig. 8) count
/// `6 × order_classes` distinct m-permutation patterns.
const GROUP_ARRANGEMENTS: [[u8; 6]; 6] = [
    [0, 1, 2, 0, 1, 2], // G0:{0,3} G1:{1,4} G2:{2,5}
    [0, 1, 2, 1, 2, 0], // G0:{0,5} G1:{1,3} G2:{2,4}
    [0, 1, 2, 2, 0, 1], // G0:{0,4} G1:{1,5} G2:{2,3}
    [1, 2, 0, 2, 0, 1], // G0:{2,4} G1:{0,5} G2:{1,3}
    [2, 0, 1, 0, 1, 2], // G0:{1,3} G1:{2,4} G2:{0,5}
    [2, 0, 0, 1, 2, 1], // G0:{1,2} G1:{3,5} G2:{0,4}
];

/// Non-linear channel hash reproducing the §5.2 permutation structure.
///
/// The physical partition space is tiled with *windows* of
/// `6 × group_size` partitions. Each window consists of six `group_size`-KiB
/// *blocks*; a block maps entirely to one channel group and covers every
/// channel of that group exactly once, in a pattern-dependent order. The
/// window's *pattern index* is `window mod num_patterns` — a modulo by a
/// non-power-of-two, which is what breaks GF(2) linearity.
#[derive(Debug, Clone)]
pub struct PermutationChannelHash {
    num_groups: u16,
    group_size: u16,
    /// `layouts[k][slot]` = channel of partition slot `slot` in a window
    /// with pattern `k`.
    layouts: Vec<Vec<u16>>,
}

impl PermutationChannelHash {
    /// Builds the mapping for `num_groups` channel groups of `group_size`
    /// channels each, with `num_patterns` distinct window layouts.
    ///
    /// # Panics
    /// Panics unless `num_groups == 3` (the structure found on both GPUs),
    /// `group_size` is a power of two and `num_patterns` is a multiple of
    /// the number of arrangements (6).
    pub fn new(num_groups: u16, group_size: u16, num_patterns: usize) -> Self {
        assert_eq!(num_groups, 3, "paper layout uses three channel groups");
        assert!(group_size.is_power_of_two());
        assert!(
            num_patterns.is_multiple_of(GROUP_ARRANGEMENTS.len()),
            "num_patterns must be a multiple of 6"
        );
        let g = group_size as usize;
        let perms = permutations(g);
        let orders_per_arr = num_patterns / GROUP_ARRANGEMENTS.len();
        assert!(
            orders_per_arr <= perms.len(),
            "not enough distinct channel orders for the requested patterns"
        );

        let mut layouts = Vec::with_capacity(num_patterns);
        for k in 0..num_patterns {
            let arr = &GROUP_ARRANGEMENTS[k % GROUP_ARRANGEMENTS.len()];
            let order_class = k / GROUP_ARRANGEMENTS.len();
            let mut layout = Vec::with_capacity(6 * g);
            let mut seen_per_group = [0usize; 3];
            for &grp in arr.iter() {
                let occurrence = seen_per_group[grp as usize];
                seen_per_group[grp as usize] += 1;
                // Each of the group's two blocks gets a distinct channel
                // order derived from the pattern's order class.
                let pidx = (order_class + grp as usize + occurrence * (perms.len() / 2).max(1))
                    % perms.len();
                for &local in &perms[pidx] {
                    layout.push(grp as u16 * group_size + local);
                }
            }
            layouts.push(layout);
        }
        Self {
            num_groups,
            group_size,
            layouts,
        }
    }

    /// Tesla P40 ground truth: 12 channels, 3 groups of 4, 24 patterns.
    pub fn tesla_p40() -> Self {
        Self::new(3, 4, 24)
    }

    /// RTX A2000 ground truth: 6 channels, 3 groups of 2, 12 patterns.
    pub fn rtx_a2000() -> Self {
        Self::new(3, 2, 12)
    }

    /// Number of 1 KiB partitions per window.
    pub fn window_partitions(&self) -> u64 {
        (6 * self.group_size) as u64
    }

    /// Number of distinct window layouts.
    pub fn num_patterns(&self) -> usize {
        self.layouts.len()
    }

    /// Channels of one full window layout (ground truth; simulator only).
    pub fn layout(&self, pattern: usize) -> &[u16] {
        &self.layouts[pattern]
    }

    /// Channel group size (the paper's "# contiguous VRAM channels").
    pub fn group_size(&self) -> u16 {
        self.group_size
    }

    /// Number of channel groups.
    pub fn num_groups(&self) -> u16 {
        self.num_groups
    }

    /// Pattern index of the window containing partition `p`.
    pub fn pattern_of_partition(&self, p: u64) -> usize {
        ((p / self.window_partitions()) % self.layouts.len() as u64) as usize
    }
}

impl ChannelHash for PermutationChannelHash {
    fn num_channels(&self) -> u16 {
        self.num_groups * self.group_size
    }

    fn channel_of(&self, addr: PhysAddr) -> u16 {
        let p = addr.hash_input();
        let w = self.window_partitions();
        let slot = (p % w) as usize;
        let pattern = ((p / w) % self.layouts.len() as u64) as usize;
        self.layouts[pattern][slot]
    }

    fn kind(&self) -> HashKind {
        HashKind::NonLinearPermutation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::PhysAddr;

    fn channel_census(hash: &dyn ChannelHash, partitions: u64) -> Vec<u64> {
        let mut counts = vec![0u64; hash.num_channels() as usize];
        for p in 0..partitions {
            counts[hash.channel_of_partition(p) as usize] += 1;
        }
        counts
    }

    #[test]
    fn permutations_cardinality() {
        assert_eq!(permutations(2).len(), 2);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        // Every permutation is a bijection on 0..n.
        for p in permutations(4) {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn gtx1080_is_uniform_and_linear() {
        let h = XorChannelHash::gtx1080();
        assert_eq!(h.num_channels(), 8);
        assert_eq!(h.kind(), HashKind::LinearXor);
        let counts = channel_census(&h, 1 << 14);
        for &c in &counts {
            assert_eq!(c, (1 << 14) / 8, "XOR hash must be perfectly uniform");
        }
    }

    #[test]
    fn gtx1080_blocks_of_four_partitions_cover_one_group() {
        // Tab. 4: GTX 1080 has 4 contiguous VRAM channels and a 4 KiB
        // maximum coloring granularity.
        let h = XorChannelHash::gtx1080();
        for block in 0..4096u64 {
            let chans: Vec<u16> = (0..4)
                .map(|s| h.channel_of(PhysAddr((block * 4 + s) * 1024)))
                .collect();
            let group = chans[0] & !0b11;
            for &c in &chans {
                assert_eq!(c & !0b11, group, "block {block} straddles groups");
            }
            let mut sorted = chans.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "block must cover all 4 group channels");
        }
    }

    #[test]
    fn gtx1080_is_gf2_linear() {
        // channel(a ^ b) == channel(a) ^ channel(b) on partition indices.
        let h = XorChannelHash::gtx1080();
        for a in [0u64, 3, 17, 129, 4095, 91234] {
            for b in [1u64, 5, 64, 777, 10240] {
                let ca = h.channel_of(PhysAddr(a << 10));
                let cb = h.channel_of(PhysAddr(b << 10));
                let cab = h.channel_of(PhysAddr((a ^ b) << 10));
                assert_eq!(cab, ca ^ cb);
            }
        }
    }

    #[test]
    fn p40_structure() {
        let h = PermutationChannelHash::tesla_p40();
        assert_eq!(h.num_channels(), 12);
        assert_eq!(h.num_patterns(), 24);
        assert_eq!(h.window_partitions(), 24);
        assert_eq!(h.kind(), HashKind::NonLinearPermutation);
    }

    #[test]
    fn a2000_structure() {
        let h = PermutationChannelHash::rtx_a2000();
        assert_eq!(h.num_channels(), 6);
        assert_eq!(h.num_patterns(), 12);
        assert_eq!(h.window_partitions(), 12);
    }

    #[test]
    fn permutation_hash_uniformity() {
        // Fig. 9: all patterns uniformly distributed ⇒ channel counts equal
        // over whole windows.
        for h in [
            PermutationChannelHash::tesla_p40(),
            PermutationChannelHash::rtx_a2000(),
        ] {
            let span = h.window_partitions() * h.num_patterns() as u64 * 4;
            let counts = channel_census(&h, span);
            let expect = span / h.num_channels() as u64;
            for (ch, &c) in counts.iter().enumerate() {
                assert_eq!(c, expect, "channel {ch} not uniform");
            }
        }
    }

    #[test]
    fn blocks_cover_exactly_one_group() {
        // §5.2 / Tab. 4: at most g KiB shares the same channel set, and a
        // g-KiB aligned block covers each channel of one group exactly once.
        for h in [
            PermutationChannelHash::tesla_p40(),
            PermutationChannelHash::rtx_a2000(),
        ] {
            let g = h.group_size() as u64;
            for block in 0..(6 * h.num_patterns() as u64 * 3) {
                let chans: Vec<u16> = (0..g)
                    .map(|s| h.channel_of_partition(block * g + s))
                    .collect();
                let grp = chans[0] / h.group_size();
                let mut set: Vec<u16> = chans.iter().map(|c| c / h.group_size()).collect();
                set.dedup();
                assert!(set.iter().all(|&x| x == grp), "block straddles groups");
                let mut sorted = chans;
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), g as usize, "block repeats a channel");
            }
        }
    }

    #[test]
    fn layouts_are_distinct() {
        for h in [
            PermutationChannelHash::tesla_p40(),
            PermutationChannelHash::rtx_a2000(),
        ] {
            for i in 0..h.num_patterns() {
                for j in (i + 1)..h.num_patterns() {
                    assert_ne!(h.layout(i), h.layout(j), "patterns {i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn permutation_hash_is_not_gf2_linear() {
        // The property FGPU relies on must *fail* here (§3.2).
        let h = PermutationChannelHash::rtx_a2000();
        let mut violations = 0;
        let mut total = 0;
        for a in 0u64..64 {
            for b in 0u64..64 {
                let ca = h.channel_of_partition(a);
                let cb = h.channel_of_partition(b);
                let cab = h.channel_of_partition(a ^ b);
                total += 1;
                if cab != ca ^ cb {
                    violations += 1;
                }
            }
        }
        assert!(
            violations * 2 > total,
            "mapping unexpectedly close to GF(2)-linear: {violations}/{total}"
        );
    }

    #[test]
    fn per_group_pattern_census_matches_fig8() {
        // Fig. 8 counts patterns *per channel group*: the (slot, channel)
        // signature of one group inside aligned windows. The paper reports
        // 24 patterns for P40 groups and 12 for A2000 groups.
        for (h, expect) in [
            (PermutationChannelHash::tesla_p40(), 24usize),
            (PermutationChannelHash::rtx_a2000(), 12usize),
        ] {
            let w = h.window_partitions();
            for group in 0..h.num_groups() {
                let mut seen = std::collections::BTreeSet::new();
                for win in 0..(expect as u64 * 8) {
                    let sig: Vec<(u64, u16)> = (0..w)
                        .map(|s| (s, h.channel_of_partition(win * w + s)))
                        .filter(|&(_, c)| c / h.group_size() == group)
                        .collect();
                    seen.insert(sig);
                }
                assert_eq!(seen.len(), expect, "group {group} pattern count");
            }
        }
    }

    #[test]
    fn pattern_census_matches_m_permutation_claim() {
        // Count distinct per-window layouts observed in a long scan; the
        // paper reports 24 patterns (P40) and 12 (A2000).
        for (h, expect) in [
            (PermutationChannelHash::tesla_p40(), 24),
            (PermutationChannelHash::rtx_a2000(), 12),
        ] {
            let w = h.window_partitions();
            let mut seen = std::collections::BTreeSet::new();
            for win in 0..(expect as u64 * 8) {
                let sig: Vec<u16> = (0..w)
                    .map(|s| h.channel_of_partition(win * w + s))
                    .collect();
                seen.insert(sig);
            }
            assert_eq!(seen.len(), expect, "observed pattern count");
        }
    }
}
