//! # gpu-spec — GPU hardware model for the SGDRC reproduction
//!
//! Foundation crate: physical-address bit structure (paper Fig. 10),
//! ground-truth VRAM channel hash mappings (§5.2 findings), GPU model
//! specifications (Tab. 1 / Tab. 4 / §9.2 testbeds) and the MMU / page
//! table model used by both the memory-hierarchy simulator and the
//! coloring driver.
//!
//! Everything downstream — the address-level simulator (`sgdrc-mem-sim`),
//! the reverse-engineering pipeline (`sgdrc-reveng`), the coloring driver
//! (`sgdrc-coloring`) and the kernel-grain engine (`sgdrc-exec-sim`) —
//! builds on these types.
//!
//! The channel-hash oracles in [`hash`] are ground truth that only the
//! *simulator* may consult; reverse engineering code observes the GPU
//! solely through memory latencies, as on real hardware.

pub mod address;
pub mod hash;
pub mod pagetable;
pub mod specs;

pub use address::{PhysAddr, VirtAddr, CACHELINE_BYTES, PAGE_BYTES, PARTITION_BYTES};
pub use hash::{ChannelHash, HashKind, PermutationChannelHash, XorChannelHash};
pub use pagetable::{MmuError, PageTable};
pub use specs::{Architecture, ContentionParams, GpuModel, GpuSpec};
