//! GPU model specifications (paper Tab. 1, Tab. 4 and §9.2 testbeds).
//!
//! Three GPUs appear in the paper: the GTX 1080 (the only GPU FGPU
//! supports), the Tesla P40 (deprecated Pascal data-center card) and the
//! RTX A2000 (current Ampere card). The spec bundles the public data-sheet
//! facts (Tab. 1), the reverse-engineered layout facts (Tab. 4), the
//! memory-hierarchy parameters used by the address-level simulator, and the
//! contention coefficients used by the kernel-grain engine (calibrated to
//! the shapes of Fig. 3 and Fig. 15a).

use crate::hash::{ChannelHash, PermutationChannelHash, XorChannelHash};

/// GPU micro-architecture generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Architecture {
    Pascal,
    Ampere,
}

/// The three GPU models used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuModel {
    Gtx1080,
    TeslaP40,
    RtxA2000,
}

impl GpuModel {
    /// All models, in paper order (Tab. 1).
    pub fn all() -> [GpuModel; 3] {
        [GpuModel::Gtx1080, GpuModel::TeslaP40, GpuModel::RtxA2000]
    }

    /// The two end-to-end evaluation testbeds (§9.2).
    pub fn testbeds() -> [GpuModel; 2] {
        [GpuModel::TeslaP40, GpuModel::RtxA2000]
    }

    /// Full hardware specification.
    pub fn spec(self) -> GpuSpec {
        match self {
            GpuModel::Gtx1080 => GpuSpec::gtx1080(),
            GpuModel::TeslaP40 => GpuSpec::tesla_p40(),
            GpuModel::RtxA2000 => GpuSpec::rtx_a2000(),
        }
    }

    /// Ground-truth channel hash oracle (simulator side only).
    pub fn channel_hash(self) -> Box<dyn ChannelHash> {
        match self {
            GpuModel::Gtx1080 => Box::new(XorChannelHash::gtx1080()),
            GpuModel::TeslaP40 => Box::new(PermutationChannelHash::tesla_p40()),
            GpuModel::RtxA2000 => Box::new(PermutationChannelHash::rtx_a2000()),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            GpuModel::Gtx1080 => "GTX 1080",
            GpuModel::TeslaP40 => "Tesla P40",
            GpuModel::RtxA2000 => "RTX A2000",
        }
    }
}

/// Contention coefficients for the kernel-grain engine.
///
/// These scale the slowdowns measured by the paper's micro-benchmarks:
/// Fig. 3a (intra-SM compute / L1 interference), Fig. 3b (inter-SM L2 and
/// DRAM-bank conflicts) and Fig. 15a (the channel-isolation speedups, which
/// are larger on the A2000 than on the P40 — 47.5% vs 28.7% mean).
#[derive(Debug, Clone, Copy)]
pub struct ContentionParams {
    /// Fractional p99 slowdown added per unit of co-resident *compute*
    /// occupancy on the same SM (Fig. 3a, "Comp.").
    pub intra_sm_compute: f64,
    /// Fractional p99 slowdown added per unit of co-resident *L1-thrashing*
    /// occupancy on the same SM (Fig. 3a, "L1C"; larger than compute).
    pub intra_sm_l1: f64,
    /// Maximum extra latency factor a memory-bound kernel suffers when its
    /// VRAM channel set fully overlaps a thrashing co-runner's (Fig. 3b:
    /// L2 cacheline + MSHR conflicts).
    pub l2_overlap_penalty: f64,
    /// Additional serialization factor from DRAM bank-row conflicts at full
    /// channel overlap (Fig. 3b).
    pub bank_serialization: f64,
    /// Slowdown from black-box hardware scheduler block placement when a
    /// kernel with many thread blocks is *not* transformed to the
    /// persistent-thread style (§7.1).
    pub sched_conflict: f64,
}

/// Static hardware description of one GPU model.
#[derive(Debug, Clone)]
pub struct GpuSpec {
    pub model: GpuModel,
    pub name: &'static str,
    pub architecture: Architecture,
    /// Texture Processing Clusters; the paper's compute-allocation unit.
    pub num_tpcs: u32,
    /// SMs per TPC (two throughout the paper, Fig. 2).
    pub sms_per_tpc: u32,
    /// Total VRAM capacity in bytes (Tab. 1).
    pub vram_bytes: u64,
    /// VRAM bus width in bits (Tab. 1).
    pub vram_bus_width_bits: u32,
    /// Bus width per GDDR unit in bits (32 for all three GPUs, Tab. 1).
    pub bus_width_per_gddr_bits: u32,
    /// Number of VRAM channels (= GDDR chips, Fig. 18).
    pub num_channels: u16,
    /// L2 slice capacity per VRAM channel in bytes.
    pub l2_bytes_per_channel: u64,
    /// L2 associativity.
    pub l2_ways: u32,
    /// DRAM banks per channel.
    pub dram_banks_per_channel: u32,
    /// Miss Status Holding Registers per channel (§2.1).
    pub mshrs_per_channel: u32,
    /// Aggregate VRAM bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Peak FP32 throughput in TFLOP/s.
    pub fp32_tflops: f64,
    /// Tab. 4: minimum coloring granularity in KiB (= channel partition).
    pub min_coloring_granularity_kib: u32,
    /// Tab. 4: maximum coloring granularity in KiB (= contiguous channels).
    pub max_coloring_granularity_kib: u32,
    /// Tab. 4: number of contiguous VRAM channels (the group size).
    pub contiguous_channels: u16,
    /// Whether NVIDIA MIG is available (only flagship GPUs; none of these).
    pub mig_support: bool,
    /// Whether NVIDIA MPS still receives driver support (§9.3 notes MPS is
    /// no longer supported on the P40).
    pub mps_support: bool,
    /// L2 hit latency in simulator cycles.
    pub l2_hit_latency: u64,
    /// DRAM row-hit latency in simulator cycles.
    pub dram_latency: u64,
    /// Extra cycles for a DRAM bank-row conflict.
    pub bank_conflict_penalty: u64,
    /// Fraction of L2 fills that evict a random line instead of LRU —
    /// the black-box cache-policy noise. §3.2 reports ~1% false-positive
    /// conflict samples on Pascal and ~5% on Ampere.
    pub cache_noise_rate: f64,
    pub contention: ContentionParams,
}

impl GpuSpec {
    pub fn gtx1080() -> Self {
        GpuSpec {
            model: GpuModel::Gtx1080,
            name: "GTX 1080",
            architecture: Architecture::Pascal,
            num_tpcs: 10,
            sms_per_tpc: 2,
            vram_bytes: 8 << 30,
            vram_bus_width_bits: 256,
            bus_width_per_gddr_bits: 32,
            num_channels: 8,
            l2_bytes_per_channel: 256 << 10,
            l2_ways: 16,
            dram_banks_per_channel: 16,
            mshrs_per_channel: 32,
            mem_bandwidth_gbps: 320.0,
            fp32_tflops: 8.87,
            min_coloring_granularity_kib: 1,
            max_coloring_granularity_kib: 4,
            contiguous_channels: 4,
            mig_support: false,
            mps_support: true,
            l2_hit_latency: 216,
            dram_latency: 434,
            bank_conflict_penalty: 180,
            cache_noise_rate: 0.01,
            contention: ContentionParams {
                intra_sm_compute: 0.32,
                intra_sm_l1: 0.55,
                l2_overlap_penalty: 0.55,
                bank_serialization: 0.30,
                sched_conflict: 0.08,
            },
        }
    }

    pub fn tesla_p40() -> Self {
        GpuSpec {
            model: GpuModel::TeslaP40,
            name: "Tesla P40",
            architecture: Architecture::Pascal,
            num_tpcs: 15,
            sms_per_tpc: 2,
            vram_bytes: 24 << 30,
            vram_bus_width_bits: 384,
            bus_width_per_gddr_bits: 32,
            num_channels: 12,
            l2_bytes_per_channel: 256 << 10,
            l2_ways: 16,
            dram_banks_per_channel: 16,
            mshrs_per_channel: 32,
            mem_bandwidth_gbps: 346.0,
            fp32_tflops: 11.76,
            min_coloring_granularity_kib: 1,
            max_coloring_granularity_kib: 4,
            contiguous_channels: 4,
            mig_support: false,
            mps_support: false,
            l2_hit_latency: 216,
            dram_latency: 434,
            bank_conflict_penalty: 180,
            cache_noise_rate: 0.01,
            contention: ContentionParams {
                intra_sm_compute: 0.30,
                intra_sm_l1: 0.52,
                l2_overlap_penalty: 0.42,
                bank_serialization: 0.25,
                sched_conflict: 0.08,
            },
        }
    }

    pub fn rtx_a2000() -> Self {
        GpuSpec {
            model: GpuModel::RtxA2000,
            name: "RTX A2000",
            architecture: Architecture::Ampere,
            num_tpcs: 13,
            sms_per_tpc: 2,
            vram_bytes: 12 << 30,
            vram_bus_width_bits: 192,
            bus_width_per_gddr_bits: 32,
            num_channels: 6,
            l2_bytes_per_channel: 512 << 10,
            l2_ways: 16,
            dram_banks_per_channel: 16,
            mshrs_per_channel: 32,
            mem_bandwidth_gbps: 288.0,
            fp32_tflops: 7.99,
            min_coloring_granularity_kib: 1,
            max_coloring_granularity_kib: 2,
            contiguous_channels: 2,
            mig_support: false,
            mps_support: true,
            l2_hit_latency: 192,
            dram_latency: 404,
            bank_conflict_penalty: 170,
            cache_noise_rate: 0.05,
            contention: ContentionParams {
                intra_sm_compute: 0.34,
                intra_sm_l1: 0.58,
                l2_overlap_penalty: 0.68,
                bank_serialization: 0.34,
                sched_conflict: 0.08,
            },
        }
    }

    /// Total SM count.
    pub fn num_sms(&self) -> u32 {
        self.num_tpcs * self.sms_per_tpc
    }

    /// Per-channel VRAM bandwidth in GB/s.
    pub fn channel_bandwidth_gbps(&self) -> f64 {
        self.mem_bandwidth_gbps / self.num_channels as f64
    }

    /// Total L2 capacity in bytes.
    pub fn l2_total_bytes(&self) -> u64 {
        self.l2_bytes_per_channel * self.num_channels as u64
    }

    /// L2 sets per channel slice (128 B lines).
    pub fn l2_sets_per_channel(&self) -> u64 {
        self.l2_bytes_per_channel / (crate::address::CACHELINE_BYTES * self.l2_ways as u64)
    }

    /// Cross-validation of the channel count from the bus width (Tab. 1:
    /// "VRAM bus width divided by the bus width per memory unit").
    pub fn channels_from_bus_width(&self) -> u16 {
        (self.vram_bus_width_bits / self.bus_width_per_gddr_bits) as u16
    }

    /// Roofline ridge point in FLOP/byte: kernels below it are
    /// memory-bound.
    pub fn ridge_flop_per_byte(&self) -> f64 {
        self.fp32_tflops * 1e12 / (self.mem_bandwidth_gbps * 1e9)
    }

    /// One row of the paper's Tab. 1.
    pub fn tab1_row(&self) -> String {
        format!(
            "{:<10} | {:<6?} | {:>4} GiB | {:>4} bit | {:>2} bit/GDDR | {:>2} channels",
            self.name,
            self.architecture,
            self.vram_bytes >> 30,
            self.vram_bus_width_bits,
            self.bus_width_per_gddr_bits,
            self.num_channels,
        )
    }

    /// One row of the paper's Tab. 4.
    pub fn tab4_row(&self) -> String {
        format!(
            "{:<10} | min {:>2} KiB | max {:>2} KiB | {:>2} contiguous | {:>2} channels",
            self.name,
            self.min_coloring_granularity_kib,
            self.max_coloring_granularity_kib,
            self.contiguous_channels,
            self.num_channels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab1_channel_counts_cross_validate() {
        // Tab. 1 / Fig. 18: channels == bus width / per-GDDR width.
        for m in GpuModel::all() {
            let s = m.spec();
            assert_eq!(s.num_channels, s.channels_from_bus_width(), "{}", s.name);
        }
    }

    #[test]
    fn tab1_values_match_paper() {
        let p40 = GpuSpec::tesla_p40();
        assert_eq!(p40.vram_bytes >> 30, 24);
        assert_eq!(p40.vram_bus_width_bits, 384);
        assert_eq!(p40.num_channels, 12);
        let a2000 = GpuSpec::rtx_a2000();
        assert_eq!(a2000.vram_bytes >> 30, 12);
        assert_eq!(a2000.vram_bus_width_bits, 192);
        assert_eq!(a2000.num_channels, 6);
        let gtx = GpuSpec::gtx1080();
        assert_eq!(gtx.vram_bytes >> 30, 8);
        assert_eq!(gtx.vram_bus_width_bits, 256);
        assert_eq!(gtx.num_channels, 8);
    }

    #[test]
    fn tab4_values_match_paper() {
        let p40 = GpuSpec::tesla_p40();
        assert_eq!(
            (
                p40.min_coloring_granularity_kib,
                p40.max_coloring_granularity_kib
            ),
            (1, 4)
        );
        assert_eq!(p40.contiguous_channels, 4);
        let a2000 = GpuSpec::rtx_a2000();
        assert_eq!(
            (
                a2000.min_coloring_granularity_kib,
                a2000.max_coloring_granularity_kib
            ),
            (1, 2)
        );
        assert_eq!(a2000.contiguous_channels, 2);
    }

    #[test]
    fn hash_matches_spec_channel_count() {
        for m in GpuModel::all() {
            let s = m.spec();
            let h = m.channel_hash();
            assert_eq!(h.num_channels(), s.num_channels, "{}", s.name);
        }
    }

    #[test]
    fn ampere_is_noisier_than_pascal() {
        // §3.2: ~1% false positives on Pascal, ~5% on Ampere.
        assert!(GpuSpec::rtx_a2000().cache_noise_rate > GpuSpec::tesla_p40().cache_noise_rate);
    }

    #[test]
    fn a2000_isolation_gain_exceeds_p40() {
        // Fig. 15a: isolation helps more on the A2000 (47.5% vs 28.7%);
        // encoded as a larger overlap penalty.
        assert!(
            GpuSpec::rtx_a2000().contention.l2_overlap_penalty
                > GpuSpec::tesla_p40().contention.l2_overlap_penalty
        );
    }

    #[test]
    fn l2_geometry_is_consistent() {
        for m in GpuModel::all() {
            let s = m.spec();
            assert!(s.l2_sets_per_channel().is_power_of_two());
            assert_eq!(
                s.l2_sets_per_channel() * s.l2_ways as u64 * 128,
                s.l2_bytes_per_channel
            );
        }
    }

    #[test]
    fn ridge_point_sane() {
        for m in GpuModel::all() {
            let r = m.spec().ridge_flop_per_byte();
            assert!(r > 10.0 && r < 60.0, "ridge {r} out of range");
        }
    }
}
