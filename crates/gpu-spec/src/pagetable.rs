//! GPU MMU model: 4 KiB page tables with randomized physical backing.
//!
//! A virtual VRAM space is "randomly mapped to a part of the physical VRAM
//! space and thus the mapping between virtual VRAM addresses and VRAM
//! channel IDs changes each time the program restarts" (paper §5.1). The
//! reverse-engineering pipeline therefore first recovers physical addresses
//! by *parsing the page table entries stored in VRAM* (following paper
//! ref [60]); [`PageTable::parse_entries`] models exactly that step.
//!
//! The page table is also the hook the coloring driver uses: the shadow
//! page table writes the physical frame numbers of colored chunks directly
//! into the GPU page table (paper Fig. 12a step 3), which
//! [`PageTable::map_at`] supports.

use crate::address::{PhysAddr, VirtAddr, PAGE_BYTES, PAGE_SHIFT};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Errors reported by the MMU model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MmuError {
    /// Physical VRAM (the simulated window) is exhausted.
    OutOfMemory,
    /// The virtual address is not mapped.
    Unmapped(VirtAddr),
    /// The virtual page is already mapped.
    AlreadyMapped(VirtAddr),
}

impl std::fmt::Display for MmuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmuError::OutOfMemory => write!(f, "simulated VRAM exhausted"),
            MmuError::Unmapped(va) => write!(f, "virtual address {:#x} not mapped", va.0),
            MmuError::AlreadyMapped(va) => write!(f, "virtual page {:#x} already mapped", va.0),
        }
    }
}

impl std::error::Error for MmuError {}

/// A 4 KiB-page MMU with a randomized physical frame allocator.
#[derive(Debug)]
pub struct PageTable {
    vpn_to_pfn: HashMap<u64, u64>,
    /// Physical frames not currently mapped, pre-shuffled at construction
    /// so that every "process restart" (new `PageTable`) sees a different
    /// virtual→physical layout.
    free_frames: Vec<u64>,
    next_vpn: u64,
    total_frames: u64,
}

impl PageTable {
    /// Creates an MMU backing `phys_bytes` of simulated physical VRAM.
    /// `seed` randomizes the frame allocation order (a fresh seed models a
    /// process restart).
    pub fn new(phys_bytes: u64, seed: u64) -> Self {
        let total_frames = phys_bytes / PAGE_BYTES;
        let mut free_frames: Vec<u64> = (0..total_frames).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        free_frames.shuffle(&mut rng);
        Self {
            vpn_to_pfn: HashMap::new(),
            free_frames,
            // Leave VA 0 unmapped so null-ish addresses fault.
            next_vpn: 1,
            total_frames,
        }
    }

    /// Allocates `bytes` of virtually-contiguous VRAM backed by random
    /// physical frames (the behaviour of `cuMemAlloc` as observed in §5.1).
    pub fn alloc(&mut self, bytes: u64) -> Result<VirtAddr, MmuError> {
        let pages = bytes.div_ceil(PAGE_BYTES).max(1);
        if (self.free_frames.len() as u64) < pages {
            return Err(MmuError::OutOfMemory);
        }
        let base_vpn = self.next_vpn;
        for i in 0..pages {
            let pfn = self.free_frames.pop().expect("checked above");
            self.vpn_to_pfn.insert(base_vpn + i, pfn);
        }
        self.next_vpn += pages;
        Ok(VirtAddr(base_vpn << PAGE_SHIFT))
    }

    /// Maps a specific physical frame at a specific virtual page — the
    /// shadow-page-table write path (Fig. 12a ❸). The frame is *not* taken
    /// from the free list; the caller (the coloring driver pool) owns it.
    pub fn map_at(&mut self, va: VirtAddr, pa: PhysAddr) -> Result<(), MmuError> {
        let vpn = va.vpn();
        if self.vpn_to_pfn.contains_key(&vpn) {
            return Err(MmuError::AlreadyMapped(va));
        }
        self.vpn_to_pfn.insert(vpn, pa.pfn());
        self.next_vpn = self.next_vpn.max(vpn + 1);
        Ok(())
    }

    /// Unmaps `bytes` starting at `va`, returning frames to the free list.
    pub fn free(&mut self, va: VirtAddr, bytes: u64) -> Result<(), MmuError> {
        let pages = bytes.div_ceil(PAGE_BYTES).max(1);
        for i in 0..pages {
            let vpn = va.vpn() + i;
            let pfn = self
                .vpn_to_pfn
                .remove(&vpn)
                .ok_or(MmuError::Unmapped(VirtAddr(vpn << PAGE_SHIFT)))?;
            self.free_frames.push(pfn);
        }
        Ok(())
    }

    /// Page walk: virtual → physical.
    pub fn translate(&self, va: VirtAddr) -> Result<PhysAddr, MmuError> {
        let pfn = self
            .vpn_to_pfn
            .get(&va.vpn())
            .ok_or(MmuError::Unmapped(va))?;
        Ok(PhysAddr((pfn << PAGE_SHIFT) | va.page_offset()))
    }

    /// "Parsing the page table entries stored in the VRAM" (§5.1): returns
    /// the (virtual page, physical frame base) pairs covering
    /// `[va, va + bytes)`. This is what gives the reverse-engineering code
    /// physical addresses without trusting the allocator.
    pub fn parse_entries(
        &self,
        va: VirtAddr,
        bytes: u64,
    ) -> Result<Vec<(VirtAddr, PhysAddr)>, MmuError> {
        let pages = bytes.div_ceil(PAGE_BYTES).max(1);
        let mut out = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            let page_va = VirtAddr((va.vpn() + i) << PAGE_SHIFT);
            let pa = self.translate(page_va)?;
            out.push((page_va, pa));
        }
        Ok(out)
    }

    /// Number of physical frames still unmapped.
    pub fn free_frames(&self) -> u64 {
        self.free_frames.len() as u64
    }

    /// Total simulated physical frames.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_translate_roundtrip() {
        let mut pt = PageTable::new(1 << 20, 7);
        let va = pt.alloc(3 * PAGE_BYTES).unwrap();
        for off in [0u64, 100, PAGE_BYTES, 2 * PAGE_BYTES + 4095] {
            let pa = pt.translate(va.offset(off)).unwrap();
            assert_eq!(pa.page_offset(), off % PAGE_BYTES);
        }
    }

    #[test]
    fn different_seeds_give_different_layouts() {
        let mut a = PageTable::new(1 << 22, 1);
        let mut b = PageTable::new(1 << 22, 2);
        let va_a = a.alloc(64 * PAGE_BYTES).unwrap();
        let va_b = b.alloc(64 * PAGE_BYTES).unwrap();
        let pa_a: Vec<_> = a.parse_entries(va_a, 64 * PAGE_BYTES).unwrap();
        let pa_b: Vec<_> = b.parse_entries(va_b, 64 * PAGE_BYTES).unwrap();
        assert_ne!(
            pa_a.iter().map(|(_, p)| p.0).collect::<Vec<_>>(),
            pa_b.iter().map(|(_, p)| p.0).collect::<Vec<_>>(),
            "restart must reshuffle the physical layout"
        );
    }

    #[test]
    fn physical_frames_are_not_contiguous() {
        let mut pt = PageTable::new(1 << 24, 3);
        let va = pt.alloc(256 * PAGE_BYTES).unwrap();
        let entries = pt.parse_entries(va, 256 * PAGE_BYTES).unwrap();
        let contiguous = entries
            .windows(2)
            .filter(|w| w[1].1 .0 == w[0].1 .0 + PAGE_BYTES)
            .count();
        assert!(
            contiguous < 64,
            "random backing should rarely be contiguous ({contiguous}/255)"
        );
    }

    #[test]
    fn free_returns_frames() {
        let mut pt = PageTable::new(1 << 20, 9);
        let before = pt.free_frames();
        let va = pt.alloc(16 * PAGE_BYTES).unwrap();
        assert_eq!(pt.free_frames(), before - 16);
        pt.free(va, 16 * PAGE_BYTES).unwrap();
        assert_eq!(pt.free_frames(), before);
    }

    #[test]
    fn oom_is_reported() {
        let mut pt = PageTable::new(4 * PAGE_BYTES, 1);
        assert!(pt.alloc(16 * PAGE_BYTES).is_err());
    }

    #[test]
    fn map_at_conflicts_are_detected() {
        let mut pt = PageTable::new(1 << 20, 5);
        let va = VirtAddr(0x40_0000);
        pt.map_at(va, PhysAddr(0x1000)).unwrap();
        assert_eq!(
            pt.map_at(va, PhysAddr(0x2000)),
            Err(MmuError::AlreadyMapped(va))
        );
        assert_eq!(pt.translate(va).unwrap(), PhysAddr(0x1000));
    }

    #[test]
    fn unmapped_translation_faults() {
        let pt = PageTable::new(1 << 20, 5);
        assert!(matches!(
            pt.translate(VirtAddr(0xdead_f000)),
            Err(MmuError::Unmapped(_))
        ));
    }
}
