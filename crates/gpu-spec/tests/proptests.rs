//! Property-based tests for the address model and channel hashes.
use gpu_spec::{hash::ChannelHash, PermutationChannelHash, PhysAddr, XorChannelHash};
use proptest::prelude::*;

proptest! {
    /// Every address inside one 1 KiB partition maps to the same channel
    /// (the §5.2 partition invariant), for all three hash families.
    #[test]
    fn partition_invariant(partition in 0u64..(1 << 22), offset in 0u64..1024) {
        for hash in [
            Box::new(XorChannelHash::gtx1080()) as Box<dyn ChannelHash>,
            Box::new(PermutationChannelHash::tesla_p40()),
            Box::new(PermutationChannelHash::rtx_a2000()),
        ] {
            let base = hash.channel_of(PhysAddr(partition * 1024));
            let inner = hash.channel_of(PhysAddr(partition * 1024 + offset));
            prop_assert_eq!(base, inner);
        }
    }

    /// Channel IDs are always in range.
    #[test]
    fn channel_in_range(addr in 0u64..(1 << 34)) {
        for hash in [
            Box::new(XorChannelHash::gtx1080()) as Box<dyn ChannelHash>,
            Box::new(PermutationChannelHash::tesla_p40()),
            Box::new(PermutationChannelHash::rtx_a2000()),
        ] {
            prop_assert!(hash.channel_of(PhysAddr(addr)) < hash.num_channels());
        }
    }

    /// Group blocks never straddle: a g-KiB aligned block covers each
    /// channel of exactly one group once (Tab. 4's granularity invariant).
    #[test]
    fn block_invariant_a2000(block in 0u64..(1 << 20)) {
        let h = PermutationChannelHash::rtx_a2000();
        let c0 = h.channel_of_partition(block * 2);
        let c1 = h.channel_of_partition(block * 2 + 1);
        prop_assert_ne!(c0, c1);
        prop_assert_eq!(c0 / 2, c1 / 2, "same group");
    }

    /// The hashed L2 set geometry keeps a partition's 8 lines in 8
    /// distinct sets of one aligned set-group.
    #[test]
    fn set_group_invariant(partition in 0u64..(1 << 24)) {
        let sets = 256u64;
        let group = gpu_spec::address::l2_set_group_of_partition(partition, sets);
        let mut seen = std::collections::BTreeSet::new();
        for line in 0..8u64 {
            let set = gpu_spec::address::l2_set_of(partition * 8 + line, sets);
            prop_assert_eq!(set >> 3, group);
            seen.insert(set);
        }
        prop_assert_eq!(seen.len(), 8);
    }

    /// `same_set_line_offset` really lands in the candidate's base set
    /// (for a same-set-group partner found near the random start).
    #[test]
    fn same_set_line_lands(cand in 0u64..(1 << 22), start in 0u64..(1 << 22)) {
        let sets = 256u64;
        let group = gpu_spec::address::l2_set_group_of_partition(cand, sets);
        let other = (start..start + 4096)
            .find(|&p| {
                p != cand && gpu_spec::address::l2_set_group_of_partition(p, sets) == group
            })
            .expect("a same-group partner exists within any 4096-partition span");
        let cand_set = gpu_spec::address::l2_set_of(cand * 8, sets);
        let off = gpu_spec::address::same_set_line_offset(cand, other);
        let line = other * 8 + off / 128;
        prop_assert_eq!(gpu_spec::address::l2_set_of(line, sets), cand_set);
    }
}
