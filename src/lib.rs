//! # sgdrc-repro — facade for the SGDRC (PPoPP '25) reproduction workspace
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests can address the whole system uniformly:
//!
//! * [`gpu_spec`] — GPU hardware model, address bits, channel hash oracles
//! * [`mem_sim`] — address-level memory-hierarchy simulator
//! * [`reveng`] — VRAM channel reverse engineering (paper §5)
//! * [`coloring`] — shadow page tables, cache coloring, bimodal tensors (§6, §7.2)
//! * [`dnn`] — DNN model zoo and kernel compiler passes (Tab. 3)
//! * [`exec_sim`] — kernel-grain discrete-event GPU engine
//! * [`core`] — the SGDRC control plane (§4, §7)
//! * [`baselines`] — Multi-streaming, TGS, MPS, Orion, SGDRC(Static), FGPU
//! * [`workload`] — traces, clients, SLO metrics, experiment runner (§9)
//! * [`bench`] — JSON writer, trace exporters, figure regeneration helpers

pub use baselines;
pub use coloring;
pub use dnn;
pub use exec_sim;
pub use gpu_spec;
pub use mem_sim;
pub use reveng;
pub use sgdrc_bench as bench;
pub use sgdrc_core as core;
pub use workload;
