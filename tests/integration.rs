//! Cross-crate integration tests: the full reverse-engineering pipeline,
//! offline-profile → online-serve round trips, and system-vs-system shape
//! assertions from the paper's evaluation.

use sgdrc_repro::baselines::{MultiStreaming, Orion};
use sgdrc_repro::core::serving::{run, Scenario, Task};
use sgdrc_repro::core::{Sgdrc, SgdrcConfig};
use sgdrc_repro::dnn;
use sgdrc_repro::dnn::zoo::{build, ModelId};
use sgdrc_repro::dnn::CompileOptions;
use sgdrc_repro::gpu_spec::GpuModel;
use sgdrc_repro::mem_sim::GpuDevice;
use sgdrc_repro::reveng::{
    align_classes, analyze, ChannelMarker, MarkerConfig, MlpConfig, MlpHashLearner, Sample,
};
use sgdrc_repro::workload::metrics::{ls_metrics, slo_for};
use sgdrc_repro::workload::trace::{generate, TraceConfig};

/// §5 end-to-end: latency-only probing → marking → structure analysis →
/// hash learner → lookup table, verified against the oracle at the end.
#[test]
fn reverse_engineering_pipeline_end_to_end() {
    let model = GpuModel::RtxA2000;
    let mut dev = GpuDevice::new(model, 96 << 20, 0xBEEF);
    let mut marker = ChannelMarker::new(&mut dev, MarkerConfig::default()).expect("marker");
    let (start, len) = marker.longest_contiguous_run();
    let count = (12 * 12 * 2).min(len);
    let labels = marker.mark_indexed(start, count).expect("marking");

    // Structure (§5.2).
    let report = analyze(&labels);
    assert_eq!(report.num_channels, 6);
    assert_eq!(report.block_size, 2);
    assert_eq!(report.groups.len(), 3);
    assert_eq!(report.window, 12);

    // Learner (§5.3) trained on the *probed* labels.
    let samples: Vec<Sample> = labels
        .iter()
        .map(|&(pa, label)| Sample {
            partition: pa.partition(),
            label,
        })
        .collect();
    let learner = MlpHashLearner::train(
        &samples,
        &MlpConfig {
            epochs: if cfg!(debug_assertions) { 25 } else { 30 },
            ..Default::default()
        },
    );
    // The learner reproduces the marking's own labels almost perfectly.
    let self_acc = learner.accuracy(&samples);
    let floor = if cfg!(debug_assertions) { 0.95 } else { 0.98 };
    assert!(self_acc > floor, "self accuracy {self_acc}");

    // Oracle verification (allowed only in tests).
    let hash = model.channel_hash();
    let (_, acc) = align_classes(&labels, |pa| hash.channel_of(pa), hash.num_channels());
    assert!(acc > 0.95, "marking accuracy vs oracle {acc}");
}

fn smoke_scenario(rate_hz: f64, horizon_us: f64) -> Scenario {
    let spec = GpuModel::RtxA2000.spec();
    let ls = dnn::compile(
        build(ModelId::MobileNetV3),
        &spec,
        CompileOptions::default(),
    );
    let be = dnn::compile(
        build(ModelId::DenseNet161),
        &spec,
        CompileOptions::default(),
    );
    let cfg = TraceConfig {
        mean_rate_hz: rate_hz,
        ..TraceConfig::apollo_like()
    };
    let ls = vec![Task::new(ls, &spec)];
    let be = vec![Task::new(be, &spec)];
    let arrivals = vec![generate(&cfg, horizon_us, 5)];
    Scenario::new(spec, ls, be, 4, arrivals, horizon_us)
}

/// Profile → serve round trip: SGDRC keeps the LS service inside its SLO
/// while the BE task makes steady progress.
#[test]
fn sgdrc_serves_within_slo() {
    let sc = smoke_scenario(120.0, 2.5e6);
    let mut policy = Sgdrc::new(&sc.spec, SgdrcConfig::default());
    let stats = run(&mut policy, &sc);
    let slo = slo_for(sc.ls[0].profile.isolated_e2e_us, 2);
    let m = ls_metrics("A", &stats.ls_completed[0], slo, sc.horizon_us);
    assert!(m.requests > 100, "requests {}", m.requests);
    assert!(m.slo_attainment > 0.95, "attainment {}", m.slo_attainment);
    assert!(
        stats.be_completed[0] > 5,
        "BE inferences {}",
        stats.be_completed[0]
    );
}

/// Fig. 17 shape: SGDRC dominates Orion on BE throughput at equal-or-
/// better SLO attainment, and dominates multi-streaming on attainment.
#[test]
fn sgdrc_beats_orion_and_multistreaming_shapes() {
    let sc = smoke_scenario(250.0, 2.5e6);
    let slo = slo_for(sc.ls[0].profile.isolated_e2e_us, 2);

    let mut sgdrc = Sgdrc::new(&sc.spec, SgdrcConfig::default());
    let s = run(&mut sgdrc, &sc);
    let s_m = ls_metrics("A", &s.ls_completed[0], slo, sc.horizon_us);

    let mut orion = Orion::default();
    let o = run(&mut orion, &sc);
    let o_m = ls_metrics("A", &o.ls_completed[0], slo, sc.horizon_us);

    let mut ms = MultiStreaming;
    let m = run(&mut ms, &sc);
    let m_m = ls_metrics("A", &m.ls_completed[0], slo, sc.horizon_us);

    // With a single light LS model Orion's free-gap BE is competitive;
    // the full-zoo dominance is asserted in the workload runner tests.
    assert!(
        s.be_completed[0] as f64 >= o.be_completed[0] as f64 * 0.85,
        "SGDRC BE {} vs Orion {}",
        s.be_completed[0],
        o.be_completed[0]
    );
    assert!(
        s_m.slo_attainment >= o_m.slo_attainment - 0.02,
        "SGDRC {} vs Orion {}",
        s_m.slo_attainment,
        o_m.slo_attainment
    );
    assert!(
        s_m.slo_attainment > m_m.slo_attainment,
        "SGDRC {} vs multi-streaming {}",
        s_m.slo_attainment,
        m_m.slo_attainment
    );
}

/// The coloring driver and the learned lookup table cooperate: a pool
/// built from a *learned* LUT allocates chunks whose true channels match
/// the requested color.
#[test]
fn learned_lut_drives_correct_coloring() {
    let model = GpuModel::RtxA2000;
    let oracle = model.channel_hash();
    let n = if cfg!(debug_assertions) {
        3_000
    } else {
        12_000
    };
    let train = sgdrc_repro::reveng::synthetic_samples(oracle.as_ref(), 1 << 18, n, 0.05, 3);
    let learner = MlpHashLearner::train(
        &train,
        &MlpConfig {
            epochs: if cfg!(debug_assertions) { 30 } else { 80 },
            ..Default::default()
        },
    );
    let lut = learner.lookup_table(4096 * 4);

    let mut pool = sgdrc_repro::coloring::ColoredPool::new(
        0,
        4096,
        sgdrc_repro::coloring::GranularityKib(2),
        move |p| lut[p as usize] / 2,
    );
    let alloc = pool.alloc_colored(&[1], 128 * 1024).expect("alloc");
    for ch in &alloc.chunks {
        let first_partition = ch.pfn * 4 + ch.sector as u64 * 2;
        let true_group = oracle.channel_of_partition(first_partition) / 2;
        assert_eq!(true_group, 1, "chunk colored with the wrong true group");
    }
}

/// Determinism: the whole serving stack is reproducible bit-for-bit.
#[test]
fn serving_is_deterministic() {
    let sc = smoke_scenario(200.0, 1e6);
    let mut a = Sgdrc::new(&sc.spec, SgdrcConfig::default());
    let ra = run(&mut a, &sc);
    let mut b = Sgdrc::new(&sc.spec, SgdrcConfig::default());
    let rb = run(&mut b, &sc);
    assert_eq!(ra.be_completed, rb.be_completed);
    assert_eq!(ra.be_preemptions, rb.be_preemptions);
    let la: Vec<f64> = ra.ls_completed[0].iter().map(|r| r.done_us).collect();
    let lb: Vec<f64> = rb.ls_completed[0].iter().map(|r| r.done_us).collect();
    assert_eq!(la, lb);
}

/// Cross-level calibration (DESIGN.md): the address-level simulator and
/// the kernel-grain contention model agree on the *direction and rough
/// magnitude* of channel-conflict slowdowns — interleaved same-channel
/// traffic slows a reader down, disjoint channels do not.
#[test]
fn mem_sim_and_exec_sim_contention_shapes_agree() {
    use sgdrc_repro::dnn::kernel::{KernelDesc, KernelKind};
    use sgdrc_repro::exec_sim::{compute_rates, ChannelSet, RunningCtx, TpcMask};

    // -- address level: a victim whose working set fits the L2 re-reads it
    // fast when alone; a co-located thrasher evicts it (the Fig. 3b / §2.2
    // L2-conflict mechanism) and the re-read pays DRAM latency.
    let mut dev = GpuDevice::new(GpuModel::RtxA2000, 32 << 20, 11);
    let victim_bytes: u64 = 1 << 20; // fits the 3 MiB L2
    let thrash_bytes: u64 = 8 << 20; // evicts everything
    let v = dev.malloc(victim_bytes).unwrap();
    let t = dev.malloc(thrash_bytes).unwrap();
    let scan = |dev: &mut GpuDevice, base: sgdrc_repro::gpu_spec::VirtAddr, bytes: u64| -> u64 {
        let mut total = 0;
        let mut off = 0;
        while off < bytes {
            total += dev.read_u64(base.offset(off)).unwrap().1;
            off += 128;
        }
        total
    };
    // Alone: warm pass, then timed re-read (hits).
    dev.flush_l2();
    scan(&mut dev, v, victim_bytes);
    let alone_cycles = scan(&mut dev, v, victim_bytes);
    // Shared: warm pass, thrasher streams, then timed re-read (misses).
    dev.flush_l2();
    scan(&mut dev, v, victim_bytes);
    scan(&mut dev, t, thrash_bytes);
    let shared_cycles = scan(&mut dev, v, victim_bytes);
    let mem_sim_slowdown = shared_cycles as f64 / alone_cycles as f64;

    // -- kernel level: the same experiment through the contention model.
    let spec = GpuModel::RtxA2000.spec();
    let stream = |mask: TpcMask| {
        RunningCtx::new(
            &spec,
            KernelDesc {
                id: 3,
                name: "stream".into(),
                kind: KernelKind::Elementwise,
                flops: 1e7,
                bytes: 2e8,
                thread_blocks: 256,
                persistent_threads: true,
                colored: false,
                extra_registers: 0,
                tensor_refs: vec![],
            },
            mask,
            ChannelSet::all(&spec),
            1.0,
        )
    };
    let v = stream(TpcMask::first(6));
    let t = stream(TpcMask::range(6, 7));
    let alone = compute_rates(&spec, std::slice::from_ref(&v))[0].duration_us;
    let shared = compute_rates(&spec, &[v, t])[0].duration_us;
    let exec_sim_slowdown = shared / alone;

    assert!(
        mem_sim_slowdown > 1.05,
        "address-level co-traffic must slow the victim ({mem_sim_slowdown})"
    );
    assert!(
        exec_sim_slowdown > 1.05,
        "kernel-level co-traffic must slow the victim ({exec_sim_slowdown})"
    );
    // Rough magnitude agreement: within a factor of 3 of each other.
    let ratio = exec_sim_slowdown / mem_sim_slowdown;
    assert!(
        (0.33..3.0).contains(&ratio),
        "levels disagree: mem-sim {mem_sim_slowdown:.2}x vs exec-sim {exec_sim_slowdown:.2}x"
    );
}
